package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements conservative-lookahead parallel simulation: a
// ShardGroup owns N independent engines (one per graph partition), each run
// on its own goroutine, synchronized by the classic null-message bound. A
// shard with incoming ports may execute events only up to
//
//	horizon = min over senders (sender commit + port lookahead) - 1,
//
// where a sender's commit C is its published promise "every message I send
// from now on arrives strictly after C + lookahead". Link propagation delay
// is the lookahead, so the bound is exactly the physical fact that a packet
// entering a wire now cannot emerge from it sooner than its delay.
//
// Determinism contract:
//
//   - One shard is the serial engine: a group of size 1 has no ports and
//     runs Engine.Run directly, bit-identical to an unsharded run.
//   - Fixed N is deterministic: each shard's RNG stream derives from the
//     base seed and the shard index, and cross-shard messages carry heap
//     keys built from (sender shard, per-port message number) — so two runs
//     interleave identically in virtual time no matter how the goroutines
//     interleave in wall time. The keys sort above every locally assigned
//     sequence number, giving same-instant injections a fixed place after
//     local work, and they consume no local sequence numbers at all.

// Heap-key ranges. Ordinary events use Engine.seq, a counter that starts at
// 1 and cannot plausibly reach 2^62 (at 10^9 events/s that is a century of
// wall clock); cross-shard injections live in [2^63, 2^63+2^62); DoLast
// barriers sort above both.
const (
	extKeyBase     = uint64(1) << 63
	extShardShift  = 47 // shard index field offset inside an injection key
	barrierKeyBase = uint64(1)<<63 | uint64(1)<<62

	// MaxShards bounds a group's size so injection keys (shard index shifted
	// into the top bits) stay below the barrier range.
	MaxShards = 1 << 14
)

// portMsg is one cross-shard event: run fn(arg) at virtual time at. seq is
// the sender-side per-port message number folded into the heap key.
type portMsg struct {
	at  Time
	seq uint64
	fn  func(any)
	arg any
}

// portBuf bounds a port's channel. Full channels apply backpressure: the
// sender spins draining its own inboxes (so two mutually full shards cannot
// deadlock) until the receiver catches up.
const portBuf = 1024

// Port is a directed cross-shard message channel with a fixed lookahead: the
// sender promises every message's arrival time is at least its own clock
// plus the lookahead (Send panics otherwise — it means a boundary link's
// delay was changed mid-run, which sharded runs must reject). A Port is
// owned by its sending shard and must only be used from that shard's
// goroutine.
type Port struct {
	from, to *Shard
	la       Duration
	ch       chan portMsg
	seq      uint64 // sender-side message counter (single-threaded)
}

// Lookahead returns the port's synchronization bound.
func (p *Port) Lookahead() Duration { return p.la }

// Send schedules fn(arg) at absolute virtual time at on the receiving
// shard's engine. Must be called from the sending shard's goroutine, during
// its Run window; at must be at least the sender's clock plus the port
// lookahead.
func (p *Port) Send(at Time, fn func(any), arg any) {
	e := p.from.eng
	if at < e.now+p.la {
		panic(fmt.Sprintf("sim: cross-shard message at %v violates lookahead %v from clock %v (boundary link delay changed mid-run?)", at, p.la, e.now))
	}
	p.seq++
	m := portMsg{at: at, seq: p.seq, fn: fn, arg: arg}
	for {
		select {
		case p.ch <- m:
			return
		default:
		}
		if p.from.group.aborted.Load() {
			panic("sim: shard group aborted")
		}
		// Receiver's inbox is full. Drain our own inboxes while we wait:
		// if the receiver is itself blocked sending to us, this unblocks
		// it, so a cycle of full channels always makes progress.
		p.from.drain()
		runtime.Gosched()
	}
}

// Shard is one partition's engine plus its synchronization state.
type Shard struct {
	idx   int
	eng   *Engine
	group *ShardGroup

	in  []*Port
	out []*Port
	// minOut is the smallest outgoing lookahead — the window chunk size.
	// Running in chunks this size keeps the published commit fresh for
	// downstream shards instead of disappearing into one long window.
	minOut Duration

	// commit is the published send bound (atomic: read by neighbors).
	commit atomic.Int64

	finished bool
	ran      uint64 // events processed by the current group Run
}

// Index returns the shard's position in its group.
func (s *Shard) Index() int { return s.idx }

// Engine returns the shard's engine.
func (s *Shard) Engine() *Engine { return s.eng }

// ShardGroup is a set of engines run in parallel under conservative
// lookahead synchronization. Create with NewShardGroup, wire Connect for
// every cross-shard edge, then Run. Between Runs (and before the first) the
// engines may be used freely from the caller's goroutine — topology
// construction, pre-run scheduling, and measurement wiring all happen
// single-threaded.
type ShardGroup struct {
	shards  []*Shard
	done    atomic.Int32
	aborted atomic.Bool
	failure atomic.Value // first panic, re-raised on the Run caller
}

// shardSeedStride spreads per-shard RNG seeds; the odd golden-ratio
// constant keeps adjacent shard seeds far apart in the generator's state
// space. Shard 0 uses the base seed unchanged, so its stream — the only one
// a serial run has — is identical at every shard count.
const shardSeedStride = int64(-7046029254386353131)

// NewShardGroup returns n engines seeded from seed: shard 0 with seed
// itself, shard i with a fixed derivation of (seed, i).
func NewShardGroup(n int, seed int64) *ShardGroup {
	if n < 1 || n > MaxShards {
		panic(fmt.Sprintf("sim: shard count %d outside [1, %d]", n, MaxShards))
	}
	g := &ShardGroup{}
	for i := 0; i < n; i++ {
		s := seed
		if i > 0 {
			s = seed + int64(i)*shardSeedStride
		}
		e := NewEngine(s)
		if i > 0 {
			e.noSimTime = true
		}
		g.shards = append(g.shards, &Shard{idx: i, eng: e, group: g})
	}
	return g
}

// N returns the number of shards.
func (g *ShardGroup) N() int { return len(g.shards) }

// Engine returns shard i's engine.
func (g *ShardGroup) Engine(i int) *Engine { return g.shards[i].eng }

// Shard returns shard i.
func (g *ShardGroup) Shard(i int) *Shard { return g.shards[i] }

// Connect declares that shard `from` sends messages to shard `to` with the
// given lookahead (a boundary link's propagation delay) and returns the
// port to send them on. Lookahead must be positive — a zero-delay boundary
// admits no conservative bound. Reconnecting an existing pair returns the
// same port with the smaller of the two lookaheads. Call only before Run,
// and in a deterministic order (partitioning code iterates the topology, so
// this holds by construction).
func (g *ShardGroup) Connect(from, to int, lookahead Duration) *Port {
	if from == to {
		panic("sim: Connect within one shard")
	}
	if lookahead <= 0 {
		panic("sim: cross-shard lookahead must be positive")
	}
	fs, ts := g.shards[from], g.shards[to]
	for _, p := range fs.out {
		if p.to == ts {
			if lookahead < p.la {
				p.la = lookahead
				fs.recomputeMinOut()
			}
			return p
		}
	}
	p := &Port{from: fs, to: ts, la: lookahead, ch: make(chan portMsg, portBuf)}
	fs.out = append(fs.out, p)
	ts.in = append(ts.in, p)
	fs.recomputeMinOut()
	return p
}

func (s *Shard) recomputeMinOut() {
	s.minOut = 0
	for _, p := range s.out {
		if s.minOut == 0 || p.la < s.minOut {
			s.minOut = p.la
		}
	}
}

// EventCounts returns the number of events each shard processed during the
// most recent Run.
func (g *ShardGroup) EventCounts() []uint64 {
	out := make([]uint64, len(g.shards))
	for i, s := range g.shards {
		out[i] = s.ran
	}
	return out
}

// Run executes all shards in parallel until virtual time `until` and
// returns the total number of events processed across them. Every shard's
// clock is left at `until` exactly. A panic on any shard (an engine
// invariant, a model bug) aborts the group and is re-raised on the caller,
// like a serial run's panic.
//
// With one shard this is exactly Engine.Run — no goroutines, no ports, no
// synchronization — which is what makes the shards=1 bit-identity contract
// hold by construction.
func (g *ShardGroup) Run(until Time) uint64 {
	if len(g.shards) == 1 {
		s := g.shards[0]
		s.ran = s.eng.Run(until)
		return s.ran
	}
	g.done.Store(0)
	g.aborted.Store(false)
	for _, s := range g.shards {
		s.finished = false
		s.commit.Store(int64(s.eng.now))
	}
	var wg sync.WaitGroup
	for _, s := range g.shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// First failure wins; wake every blocked shard so the
					// group unwinds instead of spinning forever.
					g.failure.CompareAndSwap(nil, fmt.Sprintf("shard %d: %v", s.idx, r))
					g.aborted.Store(true)
					s.commit.Store(int64(MaxTime))
					g.done.Add(1)
				}
			}()
			s.run(until)
		}(s)
	}
	wg.Wait()
	if f := g.failure.Load(); f != nil {
		panic(f)
	}
	var total uint64
	for _, s := range g.shards {
		total += s.ran
	}
	return total
}

// run is one shard's Run loop: load neighbor commits, drain inboxes,
// execute a bounded window, publish the new commit; repeat until the whole
// group has covered [start, until]. The load-before-drain order is the
// memory-model linchpin: any message not yet visible at drain time was sent
// after the commit we loaded, so its arrival lies beyond the horizon we are
// about to run to.
func (s *Shard) run(until Time) {
	e := s.eng
	g := s.group
	n := int32(len(g.shards))
	s.ran = 0
	idle := 0
	for {
		if g.aborted.Load() {
			panic("sim: shard group aborted")
		}
		if s.finished {
			// Keep draining so late senders never block on a full channel;
			// drained events land beyond `until` and simply never execute
			// (exactly the events a serial run leaves in its heap).
			s.drain()
			if g.done.Load() == n {
				return
			}
			idle = s.backoff(idle + 1)
			continue
		}

		h := s.horizon(until) // 1: load commits
		s.drain()             // 2: then drain — see ordering note above
		limit := h - 1
		if limit > until {
			limit = until
		}
		progressed := false
		if limit >= e.now {
			if s.minOut > 0 {
				if w := e.now + s.minOut; w < limit {
					limit = w
				}
			}
			before := e.now
			ran := e.Run(limit)
			s.ran += ran
			progressed = ran > 0 || e.now != before
			s.commit.Store(int64(e.now)) // 3: publish after the window
		}
		if e.now >= until && h > until {
			// Ran to the end and no neighbor can reach us at or before
			// `until` anymore: this shard is done.
			s.finished = true
			s.commit.Store(int64(MaxTime))
			g.done.Add(1)
			continue
		}
		if progressed {
			idle = 0
			continue
		}
		idle = s.backoff(idle + 1)
	}
}

// horizon returns the first virtual time a not-yet-visible message could
// arrive at: min over in-ports of (sender commit + lookahead). A shard with
// no in-ports is bounded only by the run end.
func (s *Shard) horizon(until Time) Time {
	h := MaxTime
	for _, p := range s.in {
		c := Time(p.from.commit.Load())
		if c >= MaxTime-p.la { // finished sender: no further messages
			continue
		}
		if t := c + p.la; t < h {
			h = t
		}
	}
	if h < MaxTime {
		return h
	}
	return until + 1
}

// drain moves every currently visible inbox message into the local heap
// under its deterministic injection key. Safe to call mid-event (Send calls
// it while blocked): it only schedules, never executes.
func (s *Shard) drain() {
	for _, p := range s.in {
		base := extKeyBase | uint64(p.from.idx)<<extShardShift
		for {
			select {
			case m := <-p.ch:
				s.eng.postExt(m.at, base|m.seq, m.fn, m.arg)
			default:
				goto next
			}
		}
	next:
	}
}

// backoff yields, then sleeps, while a shard waits on a slow neighbor. The
// yield threshold is deliberately low: on a machine with fewer cores than
// shards, long Gosched spins just thrash the scheduler against the other
// waiting shards.
func (s *Shard) backoff(idle int) int {
	if idle < 8 {
		runtime.Gosched()
	} else {
		time.Sleep(20 * time.Microsecond)
	}
	return idle
}
