package sim

import (
	"strings"
	"testing"
)

// TestShardGroupSerialIdentity: a group of one is the serial engine — same
// RNG stream, same event interleaving, no goroutines. The bit-identity
// contract for shards=1 rests on this.
func TestShardGroupSerialIdentity(t *testing.T) {
	trace := func(run func(e *Engine, until Time) uint64) (events uint64, draws []int64, clock Time) {
		e := NewEngine(42)
		var tick func()
		n := 0
		tick = func() {
			draws = append(draws, e.Rand().Int63())
			n++
			if n < 1000 {
				e.After(Microsecond, tick)
			}
		}
		e.After(0, tick)
		events = run(e, 10*Millisecond)
		return events, draws, e.Now()
	}

	ev1, d1, c1 := trace(func(e *Engine, until Time) uint64 { return e.Run(until) })

	g := NewShardGroup(1, 42)
	ev2, d2, c2 := func() (uint64, []int64, Time) {
		e := g.Engine(0)
		var draws []int64
		var tick func()
		n := 0
		tick = func() {
			draws = append(draws, e.Rand().Int63())
			n++
			if n < 1000 {
				e.After(Microsecond, tick)
			}
		}
		e.After(0, tick)
		ev := g.Run(10 * Millisecond)
		return ev, draws, e.Now()
	}()

	if ev1 != ev2 || c1 != c2 {
		t.Fatalf("serial (%d events, clock %v) != group-of-1 (%d events, clock %v)", ev1, c1, ev2, c2)
	}
	if len(d1) != len(d2) {
		t.Fatalf("draw counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("RNG stream diverged at draw %d", i)
		}
	}
}

// TestShardPingPong: two shards pass a token back and forth through ports
// with 1ms lookahead. Checks causal delivery (each hop lands exactly one
// lookahead after its send) and that both clocks end at the horizon.
func TestShardPingPong(t *testing.T) {
	const la = Millisecond
	const until = 100 * Millisecond
	g := NewShardGroup(2, 1)
	p01 := g.Connect(0, 1, la)
	p10 := g.Connect(1, 0, la)

	var hops0, hops1 []Time
	var bounce1, bounce0 func(any)
	bounce1 = func(any) { // runs on shard 1
		now := g.Engine(1).Now()
		hops1 = append(hops1, now)
		p10.Send(now+la, bounce0, nil)
	}
	bounce0 = func(any) { // runs on shard 0
		now := g.Engine(0).Now()
		hops0 = append(hops0, now)
		p01.Send(now+la, bounce1, nil)
	}
	g.Engine(0).Do(0, func() { p01.Send(la, bounce1, nil) })

	g.Run(until)

	if g.Engine(0).Now() != until || g.Engine(1).Now() != until {
		t.Fatalf("clocks = %v, %v, want %v", g.Engine(0).Now(), g.Engine(1).Now(), until)
	}
	// Token visits shard 1 at 1ms, 3ms, ..., 99ms and shard 0 at 2ms, 4ms,
	// ..., 100ms — the hop at exactly `until` still executes.
	if len(hops1) != 50 || len(hops0) != 50 {
		t.Fatalf("hop counts = %d, %d", len(hops1), len(hops0))
	}
	for i, at := range hops1 {
		if want := Time(2*i+1) * Millisecond; at != want {
			t.Fatalf("shard 1 hop %d at %v, want %v", i, at, want)
		}
	}
	for i, at := range hops0 {
		if want := Time(2*i+2) * Millisecond; at != want {
			t.Fatalf("shard 0 hop %d at %v, want %v", i, at, want)
		}
	}
}

// TestShardInjectionOrdering: same-instant cross-shard messages execute
// after local work at that instant, ordered by (sender shard, message
// number) — the deterministic tiebreak the heap keys encode.
func TestShardInjectionOrdering(t *testing.T) {
	const la = Millisecond
	g := NewShardGroup(3, 1)
	p10 := g.Connect(1, 0, la)
	p20 := g.Connect(2, 0, la)

	var order []string
	rec := func(tag string) func(any) {
		return func(any) { order = append(order, tag) }
	}
	// Shards 1 and 2 each send two messages landing at t=1ms on shard 0,
	// which also has local work at 1ms. Local work must run first, then
	// shard 1's messages in send order, then shard 2's.
	g.Engine(1).Do(0, func() {
		p10.Send(la, rec("s1a"), nil)
		p10.Send(la, rec("s1b"), nil)
	})
	g.Engine(2).Do(0, func() {
		p20.Send(la, rec("s2a"), nil)
		p20.Send(la, rec("s2b"), nil)
	})
	g.Engine(0).Do(la, func() { order = append(order, "local") })

	g.Run(10 * Millisecond)

	got := strings.Join(order, ",")
	if got != "local,s1a,s1b,s2a,s2b" {
		t.Fatalf("order = %s", got)
	}
}

// TestShardDoLastBarrier: DoLast fires after every ordinary event and every
// cross-shard injection at its instant, and barriers at one instant keep
// their creation order.
func TestShardDoLastBarrier(t *testing.T) {
	const la = Millisecond
	g := NewShardGroup(2, 1)
	p10 := g.Connect(1, 0, la)

	var order []string
	g.Engine(1).Do(0, func() {
		p10.Send(la, func(any) { order = append(order, "inject") }, nil)
	})
	e0 := g.Engine(0)
	e0.DoLast(la, func() { order = append(order, "barrier1") })
	e0.DoLast(la, func() { order = append(order, "barrier2") })
	e0.Do(la, func() { order = append(order, "local") })

	g.Run(10 * Millisecond)

	got := strings.Join(order, ",")
	if got != "local,inject,barrier1,barrier2" {
		t.Fatalf("order = %s", got)
	}
}

// shardTrace runs a 4-shard ring workload and returns a per-shard trace of
// (virtual time, RNG draw) pairs — the determinism witness.
func shardTrace(seed int64) [4][]int64 {
	const la = 500 * Microsecond
	g := NewShardGroup(4, seed)
	var ports [4]*Port
	for i := 0; i < 4; i++ {
		ports[i] = g.Connect(i, (i+1)%4, la)
	}
	var traces [4][]int64
	var hop [4]func(any)
	for i := 0; i < 4; i++ {
		i := i
		e := g.Engine(i)
		hop[i] = func(any) {
			traces[i] = append(traces[i], int64(e.Now()), e.Rand().Int63())
			// Forward around the ring with a seed-dependent extra delay,
			// and occasionally fan out a second token.
			d := la + Duration(e.Rand().Int63n(int64(la)))
			ports[i].Send(e.Now()+d, hop[(i+1)%4], nil)
			if e.Rand().Int63n(4) == 0 {
				ports[i].Send(e.Now()+2*d, hop[(i+1)%4], nil)
			}
		}
	}
	for i := 0; i < 4; i++ {
		i := i
		g.Engine(i).Do(Time(i)*Microsecond, func() { ports[i].Send(g.Engine(i).Now()+la, hop[(i+1)%4], nil) })
	}
	g.Run(20 * Millisecond)
	return traces
}

// TestShardDeterminism: a fixed shard count must give the same virtual-time
// interleaving and RNG consumption on every run, regardless of goroutine
// scheduling.
func TestShardDeterminism(t *testing.T) {
	ref := shardTrace(7)
	for rep := 0; rep < 3; rep++ {
		got := shardTrace(7)
		for s := 0; s < 4; s++ {
			if len(got[s]) != len(ref[s]) {
				t.Fatalf("rep %d shard %d trace length %d, want %d", rep, s, len(got[s]), len(ref[s]))
			}
			for i := range ref[s] {
				if got[s][i] != ref[s][i] {
					t.Fatalf("rep %d shard %d diverged at %d: %d vs %d", rep, s, i, got[s][i], ref[s][i])
				}
			}
		}
	}
}

// TestShardBackpressure: flooding far more messages than a port buffers, in
// both directions at once, must not deadlock — a blocked sender drains its
// own inboxes while it waits.
func TestShardBackpressure(t *testing.T) {
	const la = Millisecond
	g := NewShardGroup(2, 1)
	p01 := g.Connect(0, 1, la)
	p10 := g.Connect(1, 0, la)

	var got0, got1 int
	count0 := func(any) { got0++ }
	count1 := func(any) { got1++ }
	const burst = 3 * portBuf
	g.Engine(0).Do(0, func() {
		for i := 0; i < burst; i++ {
			p01.Send(la+Time(i), count1, nil)
		}
	})
	g.Engine(1).Do(0, func() {
		for i := 0; i < burst; i++ {
			p10.Send(la+Time(i), count0, nil)
		}
	})
	g.Run(10 * Millisecond)
	if got0 != burst || got1 != burst {
		t.Fatalf("delivered %d, %d of %d", got0, got1, burst)
	}
}

// TestShardPanicPropagates: a model panic inside one shard surfaces on the
// Run caller instead of killing the process from a bare goroutine.
func TestShardPanicPropagates(t *testing.T) {
	g := NewShardGroup(2, 1)
	g.Connect(0, 1, Millisecond)
	g.Connect(1, 0, Millisecond)
	g.Engine(1).Do(5*Millisecond, func() { panic("model bug") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "model bug") || !strings.Contains(s, "shard 1") {
			t.Fatalf("panic payload = %v", r)
		}
	}()
	g.Run(Second)
}

// TestShardLookaheadGuard: sending below the lookahead bound is a protocol
// violation and must fail loudly.
func TestShardLookaheadGuard(t *testing.T) {
	g := NewShardGroup(2, 1)
	p := g.Connect(0, 1, Millisecond)
	g.Engine(0).Do(5*Millisecond, func() {
		p.Send(g.Engine(0).Now()+Microsecond, func(any) {}, nil)
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead violation not caught")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "lookahead") {
			t.Fatalf("panic payload = %v", r)
		}
	}()
	g.Run(Second)
}

// TestShardConnectDedupe: reconnecting a pair returns the same port with the
// tighter lookahead (parallel links between two domains share one channel).
func TestShardConnectDedupe(t *testing.T) {
	g := NewShardGroup(2, 1)
	a := g.Connect(0, 1, 5*Millisecond)
	b := g.Connect(0, 1, 2*Millisecond)
	if a != b {
		t.Fatal("duplicate port for same shard pair")
	}
	if a.Lookahead() != 2*Millisecond {
		t.Fatalf("lookahead = %v, want tightened to 2ms", a.Lookahead())
	}
	if g.Connect(0, 1, 10*Millisecond).Lookahead() != 2*Millisecond {
		t.Fatal("looser reconnect widened the lookahead")
	}
}

// TestShardRepeatedRuns: a group survives multiple Run windows (the
// scenario runner runs warmup, measurement, and teardown as separate
// windows) with clocks and commits resuming correctly.
func TestShardRepeatedRuns(t *testing.T) {
	const la = Millisecond
	g := NewShardGroup(2, 1)
	p01 := g.Connect(0, 1, la)
	g.Connect(1, 0, la)
	var got []Time
	g.Engine(0).Do(0, func() {
		for i := 1; i <= 30; i++ {
			p01.Send(Time(i)*Millisecond, func(any) { got = append(got, g.Engine(1).Now()) }, nil)
		}
	})
	g.Run(10 * Millisecond)
	if len(got) != 10 {
		t.Fatalf("first window delivered %d", len(got))
	}
	g.Run(20 * Millisecond)
	if len(got) != 20 {
		t.Fatalf("second window delivered %d", len(got))
	}
	g.Run(40 * Millisecond)
	if len(got) != 30 {
		t.Fatalf("third window delivered %d", len(got))
	}
	for i, at := range got {
		if want := Time(i+1) * Millisecond; at != want {
			t.Fatalf("delivery %d at %v, want %v", i, at, want)
		}
	}
}

// TestShardSendDrainAllocBudget: the cross-shard hot path — Send into a
// port, drain into the receiving heap, execute — must not allocate once
// heaps and pools are warm, preserving the serial engine's 0 allocs/event
// per shard. Exercised single-threaded: the protocol's data path is
// identical, minus goroutine scheduling.
func TestShardSendDrainAllocBudget(t *testing.T) {
	g := NewShardGroup(2, 1)
	p := g.Connect(0, 1, Millisecond)
	s1 := g.Shard(1)
	fn := func(any) {}
	// Warm both heaps.
	for i := 0; i < 1024; i++ {
		p.Send(Time(i+1)*Millisecond, fn, nil)
	}
	s1.drain()
	s1.eng.Run(1024 * Millisecond)
	next := Time(1024) * Millisecond
	assertZeroAllocs(t, "Send+drain+Run", func() {
		next += Millisecond
		p.Send(next, fn, nil)
		s1.drain()
		s1.eng.Run(next)
	})
}

func TestShardGroupBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxShards + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewShardGroup(%d) did not panic", n)
				}
			}()
			NewShardGroup(n, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero lookahead accepted")
			}
		}()
		NewShardGroup(2, 1).Connect(0, 1, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("self-connect accepted")
			}
		}()
		NewShardGroup(2, 1).Connect(1, 1, Millisecond)
	}()
}
