package sim

import (
	"sync"
	"testing"
)

// TestCountersConcurrentEngines is the race-safety proof for Counters: many
// engines run in parallel goroutines (the harness's sweep shape) while a
// reader polls the process-wide counters the whole time. Run under -race
// (make check), any unsynchronized access to the shared counters fails the
// build gate.
func TestCountersConcurrentEngines(t *testing.T) {
	const engines = 8
	// Enough events per engine to cross the counterBatch flush threshold,
	// so the mid-Run flush path races against the reader too.
	const events = counterBatch + 500

	ev0, st0 := Counters()

	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		var lastEv uint64
		var lastSt Time
		for {
			select {
			case <-stop:
				return
			default:
			}
			ev, st := Counters()
			if ev < lastEv || st < lastSt {
				t.Error("counters went backwards")
				return
			}
			lastEv, lastSt = ev, st
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			eng := NewEngine(seed)
			var tick func()
			n := 0
			tick = func() {
				n++
				if n < events {
					eng.After(Microsecond, tick)
				}
			}
			eng.After(0, tick)
			eng.Run(Time(events+1) * Microsecond)
		}(int64(i + 1))
	}
	wg.Wait()
	close(stop)
	reader.Wait()

	ev1, st1 := Counters()
	if got := ev1 - ev0; got != uint64(engines*events) {
		t.Fatalf("events delta = %d, want %d", got, engines*events)
	}
	if st1-st0 <= 0 {
		t.Fatalf("sim time did not advance: %v", st1-st0)
	}
}
