package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// entry is one slot in the engine's pending-event heap. Entries are stored
// by value so the common schedule/pop cycle allocates nothing: a handle-free
// callback (Do/Post) lives entirely inside its heap slot, a handle-carrying
// Event or persistent Timer is referenced by pointer. Exactly one of fn,
// argFn, ev and tm is set.
//
// Cancellation is lazy: a canceled Event or superseded Timer deadline leaves
// its entry in the heap, and the entry is discarded when it reaches the top.
// This replaces the old eager heap.Remove (O(log n) pointer swaps plus index
// bookkeeping per cancel) with a single flag write, at the cost of dead
// entries occupying heap slots until their timestamp passes.
type entry struct {
	at    Time
	seq   uint64
	fn    func()    // handle-free one-shot (Do/DoAfter)
	argFn func(any) // one-shot with argument (Post/PostAfter)
	arg   any       // argument passed to argFn
	ev    *Event    // handle-carrying one-shot (At/After)
	tm    *Timer    // persistent rearmable timer
}

// before reports heap order: (time, sequence) lexicographic, so two events
// scheduled for the same instant fire in scheduling order, which keeps runs
// fully deterministic.
func (a *entry) before(b *entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Event is a scheduled callback handle returned by At/After. Events fire in
// (time, sequence) order.
//
// Handle validity: an Event handle is valid until the event fires or is
// canceled and its heap entry is discarded; after that the engine recycles
// the struct through a free list and the handle may alias a future event.
// Code that needs a long-lived rearmable handle must use Timer instead —
// Cancel/Scheduled on a handle that may already have fired is a bug.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	dead   bool
	engine *Engine
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. The callback closure is released
// immediately (not when the dead heap entry is eventually popped), so a
// canceled event never keeps its captured state reachable.
func (e *Event) Cancel() {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	e.fn = nil
	e.engine.live--
	e.engine = nil // a stale handle must not pin the engine either
}

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && !e.dead }

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.at }

// Engine is a single-threaded discrete-event simulator. It owns virtual time,
// the pending-event heap, and the run's random number generator. An Engine is
// not safe for concurrent use; simulations are deterministic single-goroutine
// programs by design.
//
// The heap is a 4-ary implicit heap of value entries: compared with the old
// container/heap binary heap of *Event it needs no per-entry index field, no
// interface dispatch, half the tree depth, and — together with the Event
// free list and lazy deletion — zero allocations on the schedule/pop cycle.
type Engine struct {
	now     Time
	pq      []entry
	seq     uint64
	live    int // scheduled events excluding dead/stale heap entries
	rng     *rand.Rand
	stopped bool

	// barrierSeq numbers DoLast entries within their own key range, above
	// every ordinary sequence number and every cross-shard injection key
	// (see shard.go), so barriers at time t fire after all other work at t.
	barrierSeq uint64

	// noSimTime suppresses this engine's contribution to the process-wide
	// totalSimTime counter. A ShardGroup sets it on every shard but the
	// first: all shards advance through the same virtual interval, so
	// counting each of them would report N× the real simulated time (the
	// event count, by contrast, is genuinely additive).
	noSimTime bool

	// freeEvents recycles fired and canceled Event structs. An Event is
	// returned to the list when its heap entry is discarded, which is why
	// stale handles must not be used (see Event).
	freeEvents []*Event

	// Processed counts events executed so far; useful for benchmarks and
	// runaway-simulation guards.
	Processed uint64
}

// NewEngine returns an engine with virtual time 0 and a deterministic RNG
// derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random number generator. All
// stochastic model components (RED marking, PERT response draws, traffic
// generators) must draw from this generator so a seed fully determines a run.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// push inserts ent, sifting up without intermediate swaps (parents are
// shifted down and the entry is written once).
func (e *Engine) push(ent entry) {
	e.pq = append(e.pq, ent)
	q := e.pq
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !ent.before(&q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ent
}

// pop removes and returns the minimum entry. The vacated tail slot is
// zeroed so the heap's backing array never retains dead callbacks.
func (e *Engine) pop() entry {
	q := e.pq
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = entry{}
	q = q[:n]
	e.pq = q
	// Sift last down from the root, again shifting instead of swapping.
	i := 0
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if q[j].before(&q[m]) {
				m = j
			}
		}
		if !q[m].before(&last) {
			break
		}
		q[i] = q[m]
		i = m
	}
	if n > 0 {
		q[i] = last
	}
	return top
}

func (e *Engine) allocEvent() *Event {
	if k := len(e.freeEvents); k > 0 {
		ev := e.freeEvents[k-1]
		e.freeEvents = e.freeEvents[:k-1]
		return ev
	}
	return &Event{}
}

func (e *Engine) recycleEvent(ev *Event) {
	ev.fn = nil
	ev.dead = true
	ev.engine = nil
	e.freeEvents = append(e.freeEvents, ev)
}

// checkFuture panics on past scheduling: it always indicates a model bug,
// and silently reordering events would corrupt causality.
func (e *Engine) checkFuture(t Time) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
}

// At schedules fn to run at absolute virtual time t and returns a cancelable
// handle. The handle is only valid until the event fires (see Event); code
// that never cancels should prefer Do, which skips the handle entirely.
func (e *Engine) At(t Time, fn func()) *Event {
	e.checkFuture(t)
	e.seq++
	ev := e.allocEvent()
	ev.at, ev.seq, ev.fn, ev.dead, ev.engine = t, e.seq, fn, false, e
	e.live++
	e.push(entry{at: t, seq: ev.seq, ev: ev})
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Do schedules fn to run at absolute virtual time t with no cancelation
// handle. The callback is stored inline in the heap slot, so scheduling
// allocates nothing beyond amortized heap growth.
func (e *Engine) Do(t Time, fn func()) {
	e.checkFuture(t)
	e.seq++
	e.live++
	e.push(entry{at: t, seq: e.seq, fn: fn})
}

// DoAfter schedules fn to run d after the current time, without a handle.
func (e *Engine) DoAfter(d Duration, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.Do(e.now+d, fn)
}

// Post schedules fn(arg) at absolute virtual time t with no handle. Because
// fn can be a long-lived closure and arg a pointer boxed without allocation,
// Post lets hot paths (per-packet link deliveries) schedule work with zero
// allocations where a fresh capturing closure would allocate every call.
func (e *Engine) Post(t Time, fn func(any), arg any) {
	e.checkFuture(t)
	e.seq++
	e.live++
	e.push(entry{at: t, seq: e.seq, argFn: fn, arg: arg})
}

// PostAfter schedules fn(arg) to run d after the current time.
func (e *Engine) PostAfter(d Duration, fn func(any), arg any) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.Post(e.now+d, fn, arg)
}

// postExt schedules fn(arg) at absolute time t under an externally assigned
// heap key instead of a fresh sequence number. Cross-shard injection uses it
// (shard.go): the key encodes (sender shard, per-port message number), so
// same-instant injections order deterministically regardless of when the
// receiving shard happened to drain them, and the local sequence counter is
// never consumed — which is what keeps a one-shard run bit-identical to the
// serial engine.
func (e *Engine) postExt(t Time, key uint64, fn func(any), arg any) {
	e.checkFuture(t)
	e.live++
	e.push(entry{at: t, seq: key, argFn: fn, arg: arg})
}

// DoLast schedules fn at absolute time t ordered after every other event at
// t — ordinary events, timers, and cross-shard injections alike (its key
// range sorts above both). Multiple barriers at the same instant fire in
// creation order. Sharded scenario runs use it to take measurement snapshots
// at window boundaries at exactly the point the serial runner reads them:
// after all simulation work at t, before anything at t+1.
func (e *Engine) DoLast(t Time, fn func()) {
	e.checkFuture(t)
	e.barrierSeq++
	e.live++
	e.push(entry{at: t, seq: barrierKeyBase + e.barrierSeq, fn: fn})
}

// Process-wide counters aggregated across every engine. Engines batch their
// updates every counterBatch events and at the end of each Run call, so the
// per-event cost is one comparison; the run-orchestration harness samples
// these for throughput metrics and for its no-progress watchdog (a live
// engine refreshes them at least every counterBatch events, so a flat
// counter over a wall-clock window really means a stuck run). They are
// monotone and never reset — consumers take deltas.
var (
	totalEvents  atomic.Uint64
	totalSimTime atomic.Int64
)

// counterBatch is how many events an engine may process before flushing its
// delta to the process-wide counters.
const counterBatch = 1 << 16

// Counters reports the cumulative number of events processed and virtual
// time advanced by all engines in this process since it started. Safe for
// concurrent use; attribute deltas to a specific run only when no other
// engine is active.
func Counters() (events uint64, simTime Time) {
	return totalEvents.Load(), Time(totalSimTime.Load())
}

// Run executes events in timestamp order until the queue empties, Stop is
// called, or virtual time would pass until. It returns the number of events
// processed by this call (dead heap entries discarded along the way are not
// events and are not counted). The engine's clock is left at min(until, time
// of last event); calling Run again with a later horizon resumes the
// simulation.
func (e *Engine) Run(until Time) uint64 {
	e.stopped = false
	var n, flushedN uint64
	flushedNow := e.now
	for len(e.pq) > 0 && !e.stopped {
		if e.pq[0].at > until {
			break
		}
		ent := e.pop()

		// Resolve the entry to a callback, discarding dead/stale entries
		// without touching the clock (a canceled event must not advance
		// virtual time, exactly as if it had been eagerly removed).
		var fn func()
		switch {
		case ent.tm != nil:
			tm := ent.tm
			if !tm.scheduled || tm.seq != ent.seq {
				continue // stopped, or superseded by a later Reset
			}
			tm.scheduled = false
			fn = tm.fn
		case ent.ev != nil:
			ev := ent.ev
			if ev.dead {
				e.recycleEvent(ev)
				continue
			}
			fn = ev.fn
			ev.dead = true
			e.recycleEvent(ev)
		case ent.argFn != nil:
			fn = nil
		default:
			fn = ent.fn
		}

		if ent.at < e.now {
			// At() rejects past scheduling, so a backwards event can only
			// mean heap corruption; executing it would corrupt causality
			// silently, which is strictly worse than dying loudly.
			panic(fmt.Sprintf("sim: event-time monotonicity violated: next event at %v, clock at %v", ent.at, e.now))
		}
		e.now = ent.at
		e.live--
		if fn != nil {
			fn()
		} else {
			ent.argFn(ent.arg)
		}
		n++
		if n-flushedN >= counterBatch {
			totalEvents.Add(n - flushedN)
			if !e.noSimTime {
				totalSimTime.Add(int64(e.now - flushedNow))
			}
			flushedN, flushedNow = n, e.now
		}
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	e.Processed += n
	totalEvents.Add(n - flushedN)
	if !e.noSimTime {
		totalSimTime.Add(int64(e.now - flushedNow))
	}
	return n
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events still scheduled. Dead heap entries
// left behind by lazy cancelation are not pending events.
func (e *Engine) Pending() int { return e.live }

// Every invokes fn(now) at t0 and then every period thereafter, until the
// returned ticker is stopped or the simulation ends. It is the building block
// for periodic samplers (queue-length probes, throughput series).
func (e *Engine) Every(t0 Time, period Duration, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.tm = e.NewTimer(t.tick)
	t.tm.Reset(t0)
	return t
}

// Ticker is a repeating event created by Engine.Every. It rearms a single
// persistent Timer, so a long-lived sampler allocates only at creation.
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      func(Time)
	tm      *Timer
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn(t.engine.Now())
	if !t.stopped {
		t.tm.ResetAfter(t.period)
	}
}

// Stop halts the ticker; pending fires are canceled.
func (t *Ticker) Stop() {
	t.stopped = true
	t.tm.Stop()
}
