package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Event is a scheduled callback. Events fire in (time, sequence) order, so
// two events scheduled for the same instant fire in scheduling order, which
// keeps runs fully deterministic.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index; -1 once popped or canceled
	dead   bool
	engine *Engine
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.index >= 0 {
		heap.Remove(&e.engine.pq, e.index)
	}
}

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && !e.dead && e.index >= 0 }

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It owns virtual time,
// the pending-event heap, and the run's random number generator. An Engine is
// not safe for concurrent use; simulations are deterministic single-goroutine
// programs by design.
type Engine struct {
	now     Time
	pq      eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// Processed counts events executed so far; useful for benchmarks and
	// runaway-simulation guards.
	Processed uint64
}

// NewEngine returns an engine with virtual time 0 and a deterministic RNG
// derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random number generator. All
// stochastic model components (RED marking, PERT response draws, traffic
// generators) must draw from this generator so a seed fully determines a run.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering events
// would corrupt causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, engine: e}
	heap.Push(&e.pq, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+d, fn)
}

// Process-wide counters aggregated across every engine. Engines batch their
// updates every counterBatch events and at the end of each Run call, so the
// per-event cost is one comparison; the run-orchestration harness samples
// these for throughput metrics and for its no-progress watchdog (a live
// engine refreshes them at least every counterBatch events, so a flat
// counter over a wall-clock window really means a stuck run). They are
// monotone and never reset — consumers take deltas.
var (
	totalEvents  atomic.Uint64
	totalSimTime atomic.Int64
)

// counterBatch is how many events an engine may process before flushing its
// delta to the process-wide counters.
const counterBatch = 1 << 16

// Counters reports the cumulative number of events processed and virtual
// time advanced by all engines in this process since it started. Safe for
// concurrent use; attribute deltas to a specific run only when no other
// engine is active.
func Counters() (events uint64, simTime Time) {
	return totalEvents.Load(), Time(totalSimTime.Load())
}

// Run executes events in timestamp order until the queue empties, Stop is
// called, or virtual time would pass until. It returns the number of events
// processed by this call. The engine's clock is left at min(until, time of
// last event); calling Run again with a later horizon resumes the simulation.
func (e *Engine) Run(until Time) uint64 {
	e.stopped = false
	var n, flushedN uint64
	flushedNow := e.now
	for len(e.pq) > 0 && !e.stopped {
		next := e.pq[0]
		if next.at > until {
			break
		}
		if next.at < e.now {
			// At() rejects past scheduling, so a backwards event can only
			// mean heap corruption; executing it would corrupt causality
			// silently, which is strictly worse than dying loudly.
			panic(fmt.Sprintf("sim: event-time monotonicity violated: next event at %v, clock at %v", next.at, e.now))
		}
		heap.Pop(&e.pq)
		e.now = next.at
		next.dead = true
		next.fn()
		n++
		if n-flushedN >= counterBatch {
			totalEvents.Add(n - flushedN)
			totalSimTime.Add(int64(e.now - flushedNow))
			flushedN, flushedNow = n, e.now
		}
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	e.Processed += n
	totalEvents.Add(n - flushedN)
	totalSimTime.Add(int64(e.now - flushedNow))
	return n
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.pq) }

// Every invokes fn(now) at t0 and then every period thereafter, until the
// returned ticker is stopped or the simulation ends. It is the building block
// for periodic samplers (queue-length probes, throughput series).
func (e *Engine) Every(t0 Time, period Duration, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.ev = e.At(t0, t.tick)
	return t
}

// Ticker is a repeating event created by Engine.Every.
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      func(Time)
	ev      *Event
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn(t.engine.Now())
	if !t.stopped {
		t.ev = t.engine.After(t.period, t.tick)
	}
}

// Stop halts the ticker; pending fires are canceled.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
