package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if Milliseconds(0.001) != Microsecond {
		t.Fatalf("Milliseconds(0.001) = %v", Milliseconds(0.001))
	}
	if got := Seconds(2).Seconds(); got != 2 {
		t.Fatalf("round trip = %v", got)
	}
	if got := Milliseconds(60).Milliseconds(); got != 60 {
		t.Fatalf("ms round trip = %v", got)
	}
	if s := Seconds(0.5).String(); s != "0.500000s" {
		t.Fatalf("String = %q", s)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	e.At(30*Millisecond, func() { fired = append(fired, 3) })
	e.At(10*Millisecond, func() { fired = append(fired, 1) })
	e.At(20*Millisecond, func() { fired = append(fired, 2) })
	e.Run(Second)
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("order = %v", fired)
	}
	if e.Now() != Second {
		t.Fatalf("clock = %v, want 1s", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Millisecond, func() { fired = append(fired, i) })
	}
	e.Run(Second)
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", fired)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(100*Millisecond, func() { fired = append(fired, e.Now()) })
	e.At(300*Millisecond, func() { fired = append(fired, e.Now()) })
	n := e.Run(200 * Millisecond)
	if n != 1 || len(fired) != 1 {
		t.Fatalf("events before horizon = %d", n)
	}
	if e.Now() != 200*Millisecond {
		t.Fatalf("clock = %v", e.Now())
	}
	// Resume past the horizon.
	n = e.Run(Second)
	if n != 1 || len(fired) != 2 || fired[1] != 300*Millisecond {
		t.Fatalf("resume fired %d events at %v", n, fired)
	}
}

func TestEngineScheduleDuringRun(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(10*Millisecond, func() {
		e.After(5*Millisecond, func() { fired = append(fired, e.Now()) })
	})
	e.Run(Second)
	if len(fired) != 1 || fired[0] != 15*Millisecond {
		t.Fatalf("nested schedule fired at %v", fired)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(time10ms(), func() {})
	e.Run(Second)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5*Millisecond, func() {})
}

func time10ms() Time { return 10 * Millisecond }

func TestEventCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10*Millisecond, func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("event should be scheduled")
	}
	ev.Cancel()
	if ev.Scheduled() {
		t.Fatal("canceled event still scheduled")
	}
	e.Run(Second)
	if fired {
		t.Fatal("canceled event fired")
	}
	ev.Cancel() // double-cancel is a no-op
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(Second)
	if count != 3 {
		t.Fatalf("processed %d events after Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := e.Every(0, 100*Millisecond, func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) == 5 {
			e.Stop()
		}
	})
	e.Run(Second)
	if len(ticks) != 5 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, tt := range ticks {
		if tt != Time(i)*100*Millisecond {
			t.Fatalf("tick %d at %v", i, tt)
		}
	}
	tk.Stop()
	before := e.Pending()
	if before != 0 {
		t.Fatalf("pending after ticker stop = %d", before)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = e.Every(0, 10*Millisecond, func(Time) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	e.Run(Second)
	if n != 2 {
		t.Fatalf("ticker fired %d times after self-stop", n)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		e := NewEngine(seed)
		var draws []float64
		e.Every(0, Millisecond, func(Time) { draws = append(draws, e.Rand().Float64()) })
		e.Run(10 * Millisecond)
		return draws
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different draws")
		}
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(7)
		var fired []Time
		for _, d := range delays {
			e.At(Time(d%1_000_000)*Microsecond, func() { fired = append(fired, e.Now()) })
		}
		e.Run(MaxTime - 1)
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
