package sim

// Timer is a persistent, rearmable scheduled callback — the handle type for
// event sources that fire many times over a run (TCP retransmission and
// delayed-ACK timers, link transmit completions, periodic samplers). Unlike
// the one-shot Event returned by At, a Timer is allocated once and then
// rearmed with Reset for the lifetime of its owner: a reset is one flag-and-
// field update plus one heap push, with no allocation and no eager removal
// of the superseded deadline.
//
// Internally every Reset stamps the timer with a fresh engine sequence
// number and pushes a new heap entry carrying that stamp; entries whose
// stamp no longer matches are discarded when popped (lazy deletion). The
// sequence stamp is drawn from the same counter At uses, so a Reset
// tie-breaks against same-instant events exactly like the cancel-and-
// reschedule pattern it replaces — timers cannot perturb deterministic
// event order.
type Timer struct {
	engine    *Engine
	fn        func()
	when      Time
	seq       uint64
	scheduled bool
}

// NewTimer returns an unarmed timer that runs fn when it fires. Arm it with
// Reset or ResetAfter.
func (e *Engine) NewTimer(fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	return &Timer{engine: e, fn: fn}
}

// Reset (re)arms the timer to fire at absolute virtual time at, replacing
// any pending deadline. Resetting to the past panics, like At.
func (t *Timer) Reset(at Time) {
	e := t.engine
	e.checkFuture(at)
	e.seq++
	t.seq = e.seq
	t.when = at
	if !t.scheduled {
		t.scheduled = true
		e.live++
	}
	e.push(entry{at: at, seq: t.seq, tm: t})
}

// ResetAfter (re)arms the timer to fire d after the current time.
func (t *Timer) ResetAfter(d Duration) {
	if d < 0 {
		panic("sim: negative delay")
	}
	t.Reset(t.engine.now + d)
}

// Stop disarms the timer. Stopping an unarmed timer is a no-op. The timer
// remains usable: Reset rearms it.
func (t *Timer) Stop() {
	if t.scheduled {
		t.scheduled = false
		t.engine.live--
	}
}

// Scheduled reports whether the timer is armed.
func (t *Timer) Scheduled() bool { return t.scheduled }

// When reports the armed deadline; meaningful only while Scheduled.
func (t *Timer) When() Time { return t.when }
