package sim

import "testing"

// Microbenchmarks for the engine's hot path: schedule one event, run it.
// Report ns/event and allocs/event; the alloc-budget tests below turn the
// zero-allocation property into a hard assertion so CI catches regressions
// without having to compare benchmark numbers.

func BenchmarkDoRun(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := Time(i + 1)
		e.Do(t, fn)
		e.Run(t)
	}
}

func BenchmarkPostRun(b *testing.B) {
	e := NewEngine(1)
	fn := func(any) {}
	var arg int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := Time(i + 1)
		e.Post(t, fn, &arg)
		e.Run(t)
	}
}

func BenchmarkAtRun(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := Time(i + 1)
		e.At(t, fn)
		e.Run(t)
	}
}

func BenchmarkAtCancel(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := Time(i + 1)
		e.At(t, fn).Cancel()
		e.Run(t) // discards the dead entry, recycling the Event
	}
}

func BenchmarkTimerResetRun(b *testing.B) {
	e := NewEngine(1)
	tm := e.NewTimer(func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := Time(i + 1)
		tm.Reset(t)
		e.Run(t)
	}
}

// BenchmarkScheduleBurst measures heap operations at depth: schedule 1024
// events, then drain them, amortizing per-event cost over a populated heap.
func BenchmarkScheduleBurst(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	const burst = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < burst; j++ {
			e.Do(base+Time(j+1), fn)
		}
		e.Run(base + Time(burst))
	}
}

// The alloc-budget assertions: after warmup (heap storage and the Event free
// list grown), the schedule/fire cycle must not allocate at all. These
// budgets are the CI fence for the pooling work — a future change that
// reintroduces a per-event allocation fails the suite, not just a benchmark
// comparison.

func warmedEngine() *Engine {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.At(Time(i+1), fn)
	}
	e.Run(Time(1024))
	return e
}

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if allocs := testing.AllocsPerRun(200, f); allocs != 0 {
		t.Errorf("%s allocates %.1f per op, budget is 0", name, allocs)
	}
}

func TestScheduleAllocBudget(t *testing.T) {
	e := warmedEngine()
	fn := func() {}
	pfn := func(any) {}
	var arg int
	tm := e.NewTimer(func() {})
	next := e.Now()

	assertZeroAllocs(t, "Do+Run", func() {
		next++
		e.Do(next, fn)
		e.Run(next)
	})
	assertZeroAllocs(t, "At+Run", func() {
		next++
		e.At(next, fn)
		e.Run(next)
	})
	assertZeroAllocs(t, "At+Cancel+Run", func() {
		next++
		e.At(next, fn).Cancel()
		e.Run(next)
	})
	assertZeroAllocs(t, "Post+Run", func() {
		next++
		e.Post(next, pfn, &arg)
		e.Run(next)
	})
	assertZeroAllocs(t, "Timer.Reset+Run", func() {
		next++
		tm.Reset(next)
		e.Run(next)
	})
}
