package sim

import (
	"sync"
	"testing"
)

// TestCountersShardGroup is the race-safety and accounting proof for
// Counters under intra-run parallelism: one ShardGroup's engines flush
// their batched deltas from concurrent goroutines while a reader polls.
// Two properties must hold (run under -race via make check):
//
//   - the event total is the sum over shards — every shard's events are
//     real work and genuinely additive;
//   - the simulated-time total advances by the run window ONCE, not once
//     per shard: all shards traverse the same virtual interval, so only
//     shard 0 contributes (the noSimTime suppression).
func TestCountersShardGroup(t *testing.T) {
	const shards = 4
	// Enough events per shard to cross the counterBatch threshold so the
	// mid-Run flush path runs concurrently on every shard.
	const perShard = counterBatch + 500
	const until = Time(perShard+1) * Microsecond

	ev0, st0 := Counters()

	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		var lastEv uint64
		var lastSt Time
		for {
			select {
			case <-stop:
				return
			default:
			}
			ev, st := Counters()
			if ev < lastEv || st < lastSt {
				t.Error("counters went backwards")
				return
			}
			lastEv, lastSt = ev, st
		}
	}()

	g := NewShardGroup(shards, 99)
	// A ring keeps the shards synchronized (so their flushes overlap in
	// wall time) without carrying any load-bearing traffic.
	for i := 0; i < shards; i++ {
		g.Connect(i, (i+1)%shards, Millisecond)
	}
	for i := 0; i < shards; i++ {
		e := g.Engine(i)
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < perShard {
				e.After(Microsecond, tick)
			}
		}
		e.After(0, tick)
	}
	total := g.Run(until)
	close(stop)
	reader.Wait()

	if total != uint64(shards*perShard) {
		t.Fatalf("group processed %d events, want %d", total, shards*perShard)
	}
	ev1, st1 := Counters()
	if got := ev1 - ev0; got != uint64(shards*perShard) {
		t.Fatalf("events delta = %d, want %d", got, shards*perShard)
	}
	// The whole group advanced one window of virtual time; counting each
	// shard would report shards× the truth.
	if got := st1 - st0; got != until {
		t.Fatalf("sim-time delta = %v, want %v (one window, not %d×)", got, until, shards)
	}
}
