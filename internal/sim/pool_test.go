package sim

import (
	"runtime"
	"testing"
	"time"
)

// TestCanceledEventReleasesClosure verifies that Cancel releases the event's
// callback closure immediately rather than when the dead heap entry is
// eventually popped: the closure's captured state must become collectable
// while the entry still sits in the heap. Without the explicit fn = nil in
// Cancel, a canceled long-deadline event (an RTO armed for seconds of
// virtual time) would pin everything its callback captured.
func TestCanceledEventReleasesClosure(t *testing.T) {
	e := NewEngine(1)
	type payload struct{ buf [1 << 16]byte }
	collected := make(chan struct{})
	p := &payload{}
	runtime.SetFinalizer(p, func(*payload) { close(collected) })
	ev := e.At(Second, func() { _ = p.buf[0] })
	p = nil
	ev.Cancel()
	// The dead entry is still in the heap (nothing has run), yet the
	// payload must be collectable now.
	for i := 0; i < 500; i++ {
		runtime.GC()
		select {
		case <-collected:
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
	t.Fatal("canceled event still pins its closure's captures")
}

// TestEventRecycling documents the handle-validity contract: once an event
// fires (or a canceled one is discarded at the heap top), its struct returns
// to the engine's free list and the next At may hand the same pointer back.
// Code holding a handle past its fire time is aliasing someone else's event —
// persistent needs must use Timer.
func TestEventRecycling(t *testing.T) {
	e := NewEngine(1)
	ev1 := e.At(Millisecond, func() {})
	e.Run(Millisecond)
	ev2 := e.At(2*Millisecond, func() {})
	if ev1 != ev2 {
		t.Fatal("fired event was not recycled through the free list")
	}

	// A canceled event is recycled when its dead entry reaches the top.
	ev2.Cancel()
	e.Run(2 * Millisecond)
	ev3 := e.At(3*Millisecond, func() {})
	if ev3 != ev2 {
		t.Fatal("canceled event was not recycled after its entry was discarded")
	}
	e.Run(3 * Millisecond)
}

// TestCancelKeepsClockAndPending verifies lazy deletion is invisible to the
// engine's observable state: canceled events do not advance the clock when
// their dead entries are discarded, and Pending never counts them.
func TestCancelKeepsClockAndPending(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	evs := make([]*Event, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, e.At(Time(i+1)*Millisecond, func() { fired = append(fired, i) }))
	}
	// Cancel the odd ones; Pending must drop immediately even though the
	// heap still holds their entries.
	for i := 1; i < 10; i += 2 {
		evs[i].Cancel()
	}
	if got := e.Pending(); got != 5 {
		t.Fatalf("Pending = %d after cancels, want 5", got)
	}
	n := e.Run(20 * Millisecond)
	if n != 5 {
		t.Fatalf("Run processed %d events, want 5", n)
	}
	if len(fired) != 5 {
		t.Fatalf("fired = %v", fired)
	}
	for _, i := range fired {
		if i%2 != 0 {
			t.Fatalf("canceled event %d fired", i)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", e.Pending())
	}
}
