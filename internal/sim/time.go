// Package sim provides a deterministic discrete-event simulation engine:
// virtual time, an event heap, and periodic sampling helpers. It is the
// foundation every other subsystem (links, queues, TCP endpoints, traffic
// generators) is built on, playing the role ns-2's scheduler plays in the
// paper's evaluation.
package sim

import (
	"fmt"
	"math"
)

// Time is virtual simulation time in nanoseconds since the start of the run.
// Nanosecond integer ticks keep event ordering exact and runs reproducible;
// floating-point seconds are only used at the API edges.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time; used as "never".
const MaxTime Time = math.MaxInt64

// Seconds converts floating-point seconds to virtual time, rounding to the
// nearest nanosecond.
func Seconds(s float64) Time {
	return Time(math.Round(s * 1e9))
}

// Milliseconds converts floating-point milliseconds to virtual time.
func Milliseconds(ms float64) Time {
	return Time(math.Round(ms * 1e6))
}

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}
