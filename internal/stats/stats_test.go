package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pert/internal/netem"
	"pert/internal/sim"
)

func TestJain(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{0, 0}, 1},
		{[]float64{5}, 1},
		{[]float64{1, 1, 1, 1}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{2, 4}, 0.9},
	}
	for _, tc := range cases {
		if got := Jain(tc.xs); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Jain(%v) = %v, want %v", tc.xs, got, tc.want)
		}
	}
}

// Property: Jain index is always in [1/n, 1] for any non-negative allocation
// with at least one positive share, and is scale-invariant.
func TestJainProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var anyPos bool
		for i, v := range raw {
			xs[i] = float64(v)
			if v > 0 {
				anyPos = true
			}
		}
		j := Jain(xs)
		if !anyPos {
			return j == 1
		}
		n := float64(len(xs))
		if j < 1/n-1e-9 || j > 1+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3.5
		}
		return math.Abs(Jain(scaled)-j) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Std() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty series not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	if math.Abs(s.Std()-2) > 1e-9 {
		t.Fatalf("std=%v, want 2", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1.0, 10)
	for _, x := range []float64{0.05, 0.15, 0.15, 0.95, 1.5, -0.2} {
		h.Add(x)
	}
	pdf := h.PDF()
	if h.Total() != 6 {
		t.Fatalf("total=%d", h.Total())
	}
	if math.Abs(pdf[0]-2.0/6) > 1e-9 { // 0.05 and the clamped -0.2
		t.Fatalf("bucket0=%v", pdf[0])
	}
	if math.Abs(pdf[1]-2.0/6) > 1e-9 {
		t.Fatalf("bucket1=%v", pdf[1])
	}
	if math.Abs(pdf[9]-2.0/6) > 1e-9 { // 0.95 and the clamped 1.5
		t.Fatalf("bucket9=%v", pdf[9])
	}
	if got := h.BucketCenter(0); math.Abs(got-0.05) > 1e-9 {
		t.Fatalf("center0=%v", got)
	}
	var sum float64
	for _, p := range pdf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("pdf sums to %v", sum)
	}
}

func TestHistogramEmptyPDF(t *testing.T) {
	h := NewHistogram(1, 4)
	for _, p := range h.PDF() {
		if p != 0 {
			t.Fatal("empty histogram PDF non-zero")
		}
	}
}

type fixedQueue struct{ n int }

func (f *fixedQueue) Enqueue(*netem.Packet, sim.Time) bool { return true }
func (f *fixedQueue) Dequeue(sim.Time) *netem.Packet       { return nil }
func (f *fixedQueue) Len() int                             { return f.n }
func (f *fixedQueue) Bytes() int                           { return f.n * 1000 }

func TestQueueMonitor(t *testing.T) {
	eng := sim.NewEngine(1)
	q := &fixedQueue{}
	link := &netem.Link{Queue: q}
	m := MonitorQueue(eng, link, 0, 10*sim.Millisecond)
	step := 0
	eng.Every(5*sim.Millisecond, 10*sim.Millisecond, func(sim.Time) {
		step++
		q.n = step // queue grows 1,2,3,... between samples
	})
	eng.Run(105 * sim.Millisecond)
	m.Stop()
	// Samples at 0,10,...,100 ms observe 0,1,2,...,10.
	if m.Series.N() != 11 {
		t.Fatalf("samples=%d", m.Series.N())
	}
	if got := m.Series.Mean(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("mean=%v", got)
	}
}

func TestMeterWindow(t *testing.T) {
	link := &netem.Link{Capacity: 8e6} // 1 MB/s
	m := NewMeter(link)
	link.Stats.TxBytes = 500
	link.Stats.Arrivals = 10
	link.Stats.Drops = 1
	link.Stats.Marks = 2
	m.Start(sim.Second)
	link.Stats.TxBytes += 500_000 // half the window's capacity
	link.Stats.Arrivals += 100
	link.Stats.Drops += 5
	link.Stats.Marks += 10
	if u := m.Utilization(sim.Second + 500*sim.Millisecond); math.Abs(u-1.0) > 1e-9 {
		t.Fatalf("utilization=%v", u)
	}
	if u := m.Utilization(2 * sim.Second); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization=%v", u)
	}
	if d := m.DropRate(); math.Abs(d-0.05) > 1e-9 {
		t.Fatalf("droprate=%v", d)
	}
	if d := m.MarkRate(); math.Abs(d-0.10) > 1e-9 {
		t.Fatalf("markrate=%v", d)
	}
	if m.Drops() != 5 {
		t.Fatalf("drops=%d", m.Drops())
	}
}
