package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pert/internal/netem"
	"pert/internal/sim"
)

func TestReservoirSmallStreamExact(t *testing.T) {
	r := NewReservoir(100, rand.New(rand.NewSource(1)))
	for i := 1; i <= 9; i++ {
		r.Add(float64(i))
	}
	if got := r.Quantile(0.5); got != 5 {
		t.Fatalf("median = %v", got)
	}
	if got := r.Quantile(0); got != 1 {
		t.Fatalf("min = %v", got)
	}
	if got := r.Quantile(1); got != 9 {
		t.Fatalf("max = %v", got)
	}
	if r.Seen() != 9 {
		t.Fatalf("seen = %d", r.Seen())
	}
}

func TestReservoirLargeStreamApproximate(t *testing.T) {
	r := NewReservoir(2048, rand.New(rand.NewSource(2)))
	// Uniform [0,1): quantiles should be close to their nominal values.
	src := rand.New(rand.NewSource(3))
	for i := 0; i < 200000; i++ {
		r.Add(src.Float64())
	}
	qs := r.Quantiles(0.5, 0.95, 0.99)
	for i, want := range []float64{0.5, 0.95, 0.99} {
		if math.Abs(qs[i]-want) > 0.04 {
			t.Fatalf("q%v = %v", want, qs[i])
		}
	}
}

func TestReservoirEmptyAndClamp(t *testing.T) {
	r := NewReservoir(8, rand.New(rand.NewSource(4)))
	if r.Quantile(0.5) != 0 {
		t.Fatal("empty reservoir non-zero")
	}
	r.Add(7)
	if r.Quantile(-1) != 7 || r.Quantile(2) != 7 {
		t.Fatal("quantile clamp broken")
	}
}

// Property: quantiles are monotone in q and bounded by observed min/max.
func TestReservoirMonotoneProperty(t *testing.T) {
	f := func(xs []float64, seed int64) bool {
		if len(xs) == 0 {
			return true
		}
		r := NewReservoir(64, rand.New(rand.NewSource(seed)))
		min, max := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			r.Add(x)
			min = math.Min(min, x)
			max = math.Max(max, x)
		}
		if r.Seen() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v := r.Quantile(q)
			if v < prev || v < min || v > max {
				return false
			}
			prev = v
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(16))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDelayMonitorMeasuresSojourn(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	a, b := net.AddNode(), net.AddNode()
	q := &fixedFIFO{}
	l := net.AddLink(a, b, 8e6, 0, q) // 1000B = 1ms serialization
	net.ComputeRoutes()
	m := MonitorDelay(l, 0, rand.New(rand.NewSource(5)))
	b.AttachFlow(1, nullHandler{})
	// 10 back-to-back packets: the k-th waits k ms (service of those ahead
	// plus its own transmission).
	for i := 0; i < 10; i++ {
		net.SendFrom(a, &netem.Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000})
	}
	eng.Run(sim.Second)
	if m.Samples() != 10 {
		t.Fatalf("samples = %d", m.Samples())
	}
	if got := m.Quantile(1); math.Abs(got-0.010) > 1e-9 {
		t.Fatalf("max sojourn = %v, want 10 ms", got)
	}
	if got := m.Quantile(0); math.Abs(got-0.001) > 1e-9 {
		t.Fatalf("min sojourn = %v, want 1 ms", got)
	}
}

func TestDelayMonitorIgnoresDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	net := netem.NewNetwork(eng)
	a, b := net.AddNode(), net.AddNode()
	q := &fixedFIFO{limit: 2}
	l := net.AddLink(a, b, 8e6, 0, q)
	net.ComputeRoutes()
	m := MonitorDelay(l, 0, rand.New(rand.NewSource(6)))
	b.AttachFlow(1, nullHandler{})
	for i := 0; i < 10; i++ {
		net.SendFrom(a, &netem.Packet{ID: net.NewPacketID(), Flow: 1, Src: a.ID, Dst: b.ID, Size: 1000})
	}
	eng.Run(sim.Second)
	// 1 in service + 2 queued delivered; 7 dropped.
	if m.Samples() != 3 {
		t.Fatalf("samples = %d", m.Samples())
	}
}

type nullHandler struct{}

func (nullHandler) Receive(*netem.Packet, sim.Time) {}

// fixedFIFO is a minimal test FIFO with optional limit.
type fixedFIFO struct {
	pkts  []*netem.Packet
	limit int
}

func (f *fixedFIFO) Enqueue(p *netem.Packet, _ sim.Time) bool {
	if f.limit > 0 && len(f.pkts) >= f.limit {
		return false
	}
	f.pkts = append(f.pkts, p)
	return true
}

func (f *fixedFIFO) Dequeue(_ sim.Time) *netem.Packet {
	if len(f.pkts) == 0 {
		return nil
	}
	p := f.pkts[0]
	f.pkts = f.pkts[1:]
	return p
}

func (f *fixedFIFO) Len() int { return len(f.pkts) }
func (f *fixedFIFO) Bytes() int {
	n := 0
	for _, p := range f.pkts {
		n += p.Size
	}
	return n
}
