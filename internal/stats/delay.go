package stats

import (
	"math/rand"

	"pert/internal/netem"
	"pert/internal/sim"
)

// DelayMonitor measures the per-packet queueing+transmission delay through
// one link (departure time minus arrival time), keeping a reservoir for
// percentile queries. This is the end-user-visible latency metric router-AQM
// papers report alongside mean queue length.
type DelayMonitor struct {
	res     *Reservoir
	pending map[uint64]sim.Time
	from    sim.Time
}

// MonitorDelay instruments the link, sampling packets that arrive after
// from. It chains with existing hooks.
func MonitorDelay(link *netem.Link, from sim.Time, rng *rand.Rand) *DelayMonitor {
	m := &DelayMonitor{
		res:     NewReservoir(4096, rng),
		pending: make(map[uint64]sim.Time),
		from:    from,
	}
	prevEnq := link.OnEnqueue
	link.OnEnqueue = func(p *netem.Packet, now sim.Time) {
		if prevEnq != nil {
			prevEnq(p, now)
		}
		if now >= m.from {
			m.pending[p.ID] = now
		}
	}
	prevDep := link.OnDepart
	link.OnDepart = func(p *netem.Packet, now sim.Time) {
		if prevDep != nil {
			prevDep(p, now)
		}
		if at, ok := m.pending[p.ID]; ok {
			delete(m.pending, p.ID)
			m.res.Add((now - at).Seconds())
		}
	}
	prevDrop := link.OnDrop
	link.OnDrop = func(p *netem.Packet, now sim.Time) {
		if prevDrop != nil {
			prevDrop(p, now)
		}
		delete(m.pending, p.ID)
	}
	return m
}

// Quantile returns the q-th delay quantile in seconds.
func (m *DelayMonitor) Quantile(q float64) float64 { return m.res.Quantile(q) }

// P50P95P99 returns the three standard latency percentiles in seconds.
func (m *DelayMonitor) P50P95P99() (p50, p95, p99 float64) {
	qs := m.res.Quantiles(0.50, 0.95, 0.99)
	return qs[0], qs[1], qs[2]
}

// Samples returns the number of delays measured.
func (m *DelayMonitor) Samples() uint64 { return m.res.Seen() }
