package stats

import (
	"math/rand"
	"sort"
)

// Reservoir keeps a bounded uniform sample of a stream (Vitter's algorithm
// R), supporting quantile queries over arbitrarily long runs with fixed
// memory — used for queueing-delay percentiles where the full distribution
// would be millions of samples.
type Reservoir struct {
	cap  int
	rng  *rand.Rand
	buf  []float64
	seen uint64
}

// NewReservoir creates a reservoir holding at most capacity samples.
func NewReservoir(capacity int, rng *rand.Rand) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{cap: capacity, rng: rng}
}

// Add offers one observation.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, x)
		return
	}
	if j := r.rng.Int63n(int64(r.seen)); j < int64(r.cap) {
		r.buf[j] = x
	}
}

// Seen returns the number of observations offered.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Quantile returns the q-th sample quantile (0 <= q <= 1) of the retained
// sample, or 0 if empty.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.buf) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), r.buf...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Quantiles returns several quantiles in one sort.
func (r *Reservoir) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(r.buf) == 0 {
		return out
	}
	sorted := append([]float64(nil), r.buf...)
	sort.Float64s(sorted)
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		out[i] = sorted[int(q*float64(len(sorted)-1))]
	}
	return out
}
