// Package stats provides the measurement instruments used across the
// experiments: the Jain fairness index, time-averaged queue monitoring,
// link utilization/drop-rate meters over measurement windows, histograms for
// empirical PDFs, and per-cohort throughput time series.
package stats

import (
	"math"

	"pert/internal/netem"
	"pert/internal/sim"
)

// Jain returns the Jain fairness index (sum x)^2 / (n * sum x^2) of the
// allocation xs. It is 1 when all shares are equal and approaches 1/n under
// total unfairness. An empty or all-zero allocation is trivially fair (1).
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// Series accumulates scalar samples and reports moments.
type Series struct {
	n           int
	sum, sumsq  float64
	min, max    float64
	hasExtremes bool
}

// Add folds in one sample.
func (s *Series) Add(x float64) {
	s.n++
	s.sum += x
	s.sumsq += x * x
	if !s.hasExtremes || x < s.min {
		s.min = x
	}
	if !s.hasExtremes || x > s.max {
		s.max = x
	}
	s.hasExtremes = true
}

// N returns the number of samples.
func (s *Series) N() int { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Series) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Series) Std() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumsq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Max returns the largest sample (0 with no samples).
func (s *Series) Max() float64 {
	if !s.hasExtremes {
		return 0
	}
	return s.max
}

// Min returns the smallest sample (0 with no samples).
func (s *Series) Min() float64 {
	if !s.hasExtremes {
		return 0
	}
	return s.min
}

// QueueMonitor periodically samples a link's instantaneous shared queue
// length — real packets plus any modeled fluid backlog. On pure packet links
// Link.QueuePkts is exactly float64(Queue.Len()), so samples are unchanged.
type QueueMonitor struct {
	Queue  netem.Discipline
	Series Series
	link   *netem.Link
	ticker *sim.Ticker
}

// MonitorQueue samples the link's queue every interval starting at from.
func MonitorQueue(eng *sim.Engine, link *netem.Link, from sim.Time, interval sim.Duration) *QueueMonitor {
	m := &QueueMonitor{Queue: link.Queue, link: link}
	m.ticker = eng.Every(from, interval, func(sim.Time) {
		m.Series.Add(m.link.QueuePkts())
	})
	return m
}

// Stop halts sampling.
func (m *QueueMonitor) Stop() { m.ticker.Stop() }

// Meter measures a link over a window: utilization, drop rate, marks.
type Meter struct {
	Link *netem.Link

	startTime     sim.Time
	startTxBytes  uint64
	startArrivals uint64
	startDrops    uint64
	startMarks    uint64
	started       bool
}

// NewMeter creates a meter for the link; call Start at the beginning of the
// measurement window.
func NewMeter(link *netem.Link) *Meter { return &Meter{Link: link} }

// Start snapshots the link counters at the beginning of the window.
func (m *Meter) Start(now sim.Time) {
	m.started = true
	m.startTime = now
	m.startTxBytes = m.Link.Stats.TxBytes
	m.startArrivals = m.Link.Stats.Arrivals
	m.startDrops = m.Link.Stats.Drops
	m.startMarks = m.Link.Stats.Marks
}

// Utilization returns the link utilization in [0,1] over [start, now],
// integrating the link's capacity history so mid-window capacity changes
// (LinkSchedule) are weighted by how long each rate was in effect.
func (m *Meter) Utilization(now sim.Time) float64 {
	if !m.started || now <= m.startTime {
		return 0
	}
	return m.Link.UtilizationOver(m.startTxBytes, m.startTime, now)
}

// DropRate returns the fraction of offered packets dropped over the window.
func (m *Meter) DropRate() float64 {
	arr := m.Link.Stats.Arrivals - m.startArrivals
	if arr == 0 {
		return 0
	}
	return float64(m.Link.Stats.Drops-m.startDrops) / float64(arr)
}

// MarkRate returns the fraction of offered packets ECN-marked over the
// window.
func (m *Meter) MarkRate() float64 {
	arr := m.Link.Stats.Arrivals - m.startArrivals
	if arr == 0 {
		return 0
	}
	return float64(m.Link.Stats.Marks-m.startMarks) / float64(arr)
}

// Drops returns the number of drops in the window.
func (m *Meter) Drops() uint64 { return m.Link.Stats.Drops - m.startDrops }

// Histogram is a fixed-width bucket histogram over [0, Max) used for
// empirical PDFs such as Figure 4's distribution of normalized queue length.
type Histogram struct {
	Max     float64
	Buckets []uint64
	total   uint64
}

// NewHistogram creates a histogram with n equal buckets spanning [0, max).
func NewHistogram(max float64, n int) *Histogram {
	if n <= 0 || max <= 0 {
		panic("stats: histogram needs positive size and range")
	}
	return &Histogram{Max: max, Buckets: make([]uint64, n)}
}

// Add records one observation; values outside [0, Max) clamp to the edge
// buckets.
func (h *Histogram) Add(x float64) {
	i := int(x / h.Max * float64(len(h.Buckets)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.total++
}

// PDF returns each bucket's fraction of the total mass.
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.Buckets))
	if h.total == 0 {
		return out
	}
	for i, b := range h.Buckets {
		out[i] = float64(b) / float64(h.total)
	}
	return out
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// BucketCenter returns the midpoint value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := h.Max / float64(len(h.Buckets))
	return (float64(i) + 0.5) * w
}
