module pert

go 1.22
