// Multibottleneck: the paper's Figure 10 parking-lot topology — a chain of
// six routers with host clouds, hop-by-hop traffic, and through traffic
// crossing every core link. PERT's end-to-end delay signal sees the SUM of
// the queues along the path, yet keeps every one of them short.
package main

import (
	"fmt"

	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

func main() {
	eng := sim.NewEngine(11)
	net := netem.NewNetwork(eng)

	p := topo.NewParkingLot(net, topo.ParkingLotConfig{
		Routers:   6,
		CloudSize: 8,
		CoreBW:    30e6,
		Queue: func(limit int, _ float64) netem.Discipline {
			return queue.NewDropTail(limit)
		},
	})

	ids := trafficgen.NewIDs()
	pert := func() tcp.CongestionControl { return tcp.NewPERTRed() }

	// Hop-by-hop: cloud i -> cloud i+1; through: cloud 1 -> cloud 6.
	for hop := 0; hop+1 < len(p.Clouds); hop++ {
		trafficgen.FTPFleet(net, ids, p.Clouds[hop], p.Clouds[hop+1], 8,
			trafficgen.FTPConfig{CC: pert, StartWindow: sim.Seconds(5)})
	}
	through := trafficgen.FTPFleet(net, ids, p.Clouds[0], p.Clouds[5], 8,
		trafficgen.FTPConfig{CC: pert, StartWindow: sim.Seconds(5)})

	eng.Run(sim.Seconds(15))
	meters := make([]*stats.Meter, len(p.Forward))
	qmons := make([]*stats.QueueMonitor, len(p.Forward))
	for i, l := range p.Forward {
		meters[i] = stats.NewMeter(l)
		meters[i].Start(eng.Now())
		qmons[i] = stats.MonitorQueue(eng, l, eng.Now(), 10*sim.Millisecond)
	}
	snap := trafficgen.GoodputSnapshot(through)
	eng.Run(sim.Seconds(50))

	fmt.Println("PERT across five consecutive bottlenecks (30 Mbps core links):")
	fmt.Printf("%-8s %12s %10s %12s\n", "link", "avg_queue", "drops", "utilization")
	for i := range p.Forward {
		fmt.Printf("R%d-R%d    %12.1f %10d %12.3f\n",
			i+1, i+2, qmons[i].Series.Mean(), meters[i].Drops(), meters[i].Utilization(eng.Now()))
	}
	fmt.Printf("\nfairness among through flows (6 hops): %.3f\n",
		stats.Jain(trafficgen.Goodputs(through, snap)))
}
