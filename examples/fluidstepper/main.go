// Fluidstepper: the resumable fluid-model integrator behind the hybrid
// fluid/packet substrate. Where fluid.Integrate runs a whole horizon in one
// batch, a fluid.Stepper advances the delay-differential model (eq. 14) in
// lockstep with an outer clock — AdvanceTo between events, State and StateAt
// whenever the co-simulation needs the modeled window, queue, or a delayed
// term. Memory stays bounded by the model's MaxLag, so a million-step run
// costs the same as a hundred. The program walks the three uses in order:
// stepping to irregular times, reading delayed state, and the hybrid
// coupling where a foreground packet rate shifts the aggregate's
// equilibrium.
package main

import (
	"fmt"

	"pert/internal/fluid"
)

func main() {
	// An ISP-scale aggregate: 100k modeled PERT flows on a 10^7 pkt/s
	// (83 Gbps) core, the ext-hybrid configuration. W* = RC/N = 6.
	p := fluid.PERTParams{
		C: 1e7, N: 1e5, R: 0.06,
		Tmin: 0.005, Tmax: 0.105, Pmax: 0.1,
		Alpha: 0.99, Delta: 1e-4,
	}
	wStar, pStar, tqStar := p.Equilibrium()
	fmt.Printf("fluid-only equilibrium: W*=%.2f pkts p*=%.4f Tq*=%.1f ms\n\n", wStar, pStar, tqStar*1000)

	// 1. Resumable integration: advance to arbitrary, uneven times — the
	// way netem's co-simulation ticker drives the model between packet
	// events. The cold start is W=1 and an empty queue.
	st := fluid.NewStepper(p.System(), []float64{1, 0, 0}, 0, 1e-3)
	fmt.Println("t_s     window_pkts  queue_delay_ms")
	for _, t := range []float64{0.25, 1, 3.3333, 10, 30} {
		st.AdvanceTo(t)
		x := st.State()
		fmt.Printf("%-7.2f %-12.3f %.2f\n", st.Time(), x[0], x[1]*1000)
	}

	// 2. Delayed state: the DDE's right-hand side reads terms R seconds in
	// the past; StateAt exposes the same bounded history to callers.
	fmt.Printf("\nwindow now: %.3f pkts; one RTT ago: %.3f pkts\n",
		st.State()[0], st.StateAt(p.R, 0))

	// 3. Hybrid coupling: a measured foreground packet rate joins the
	// drain term, so the aggregate settles where modeled + real traffic
	// share the link: W* = (C-ap)R/N (DESIGN.md §10).
	for _, ap := range []float64{0, 1.2e5, 1e6} {
		ap := ap
		sys := p.HybridSystem(fluid.HybridInputs{PacketRate: func() float64 { return ap }})
		hs := fluid.NewStepper(sys, []float64{1, 0, 0}, 0, 1e-3)
		hs.AdvanceTo(30)
		w, _, tq := p.HybridEquilibrium(ap)
		fmt.Printf("foreground %-9.0f pkt/s: settled W=%.3f (predicted %.3f)  Tq=%.1f ms (predicted %.1f)\n",
			ap, hs.State()[0], w, hs.State()[1]*1000, tq*1000)
	}
}
