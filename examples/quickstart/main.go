// Quickstart: build a dumbbell network, run a handful of PERT flows over a
// plain DropTail bottleneck, and watch PERT hold the queue near-empty with
// zero losses — AQM behaviour with no router support.
package main

import (
	"fmt"

	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/tcp"
	"pert/internal/topo"
)

func main() {
	// A deterministic simulation engine: same seed, same run.
	eng := sim.NewEngine(42)
	net := netem.NewNetwork(eng)

	// Dumbbell: 4 host pairs around a 20 Mbps / 60 ms-RTT bottleneck with
	// a bandwidth-delay product of buffering, managed by plain DropTail.
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth: 20e6,
		Delay:     20 * sim.Millisecond,
		Hosts:     4,
		RTTs:      []sim.Duration{60 * sim.Millisecond},
		Queue: func(limit int, _ float64) netem.Discipline {
			return queue.NewDropTail(limit)
		},
	})

	// Four long-lived PERT flows with staggered starts.
	var flows []*tcp.Flow
	for i := 0; i < 4; i++ {
		f := tcp.NewFlow(net, d.Left[i], d.Right[i], i+1, tcp.NewPERTRed(), tcp.Config{})
		f.Start(sim.Time(i) * 500 * sim.Millisecond)
		flows = append(flows, f)
	}

	// Warm up 10 s, then measure 30 s of steady state.
	eng.Run(10 * sim.Second)
	meter := stats.NewMeter(d.Forward)
	meter.Start(eng.Now())
	qmon := stats.MonitorQueue(eng, d.Forward, eng.Now(), 10*sim.Millisecond)
	eng.Run(40 * sim.Second)

	fmt.Printf("bottleneck buffer:   %d packets\n", d.BufferPkts)
	fmt.Printf("average queue:       %.1f packets\n", qmon.Series.Mean())
	fmt.Printf("drop rate:           %.3g\n", meter.DropRate())
	fmt.Printf("link utilization:    %.1f%%\n", 100*meter.Utilization(eng.Now()))

	var gps []float64
	for _, f := range flows {
		gps = append(gps, float64(f.Sink.BytesGoodput))
	}
	fmt.Printf("fairness (Jain):     %.3f\n", stats.Jain(gps))
	var early uint64
	for _, f := range flows {
		early += f.Conn.Stats.EarlyResponses
	}
	fmt.Printf("early responses:     %d (proactive multiplicative decreases)\n", early)
}
