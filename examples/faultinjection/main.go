// Faultinjection: the deterministic network-impairment subsystem in action.
// A PERT fleet and a Sack/Droptail fleet each cross a lossy bottleneck whose
// capacity halves mid-run and which flaps down entirely for two seconds —
// while the invariant auditor checks packet conservation the whole time.
// The point of the comparison: random wire loss hits a loss-based controller
// directly (every loss halves its window) but is invisible to PERT's delay
// signal, so PERT keeps its low queue without surrendering utilization.
package main

import (
	"fmt"

	"pert/internal/experiments"
	"pert/internal/netem"
	"pert/internal/sim"
	"pert/internal/topo"
)

func main() {
	// A flapping, lossy 30 Mbps bottleneck: capacity halves at t=15s,
	// recovers at t=30s, and the link blacks out entirely during 35-37s
	// (queued packets and packets on the wire are lost).
	schedule := netem.LinkSchedule{
		{At: sim.Seconds(15), Capacity: 15e6},
		{At: sim.Seconds(30), Capacity: 30e6},
		{At: sim.Seconds(35), Down: true},
		{At: sim.Seconds(37), Up: true},
	}

	fmt.Println("30 Mbps bottleneck, 60 ms RTT, 12 flows")
	fmt.Println("faults: 1% wire loss, 0.1% duplication, 0.5% reordering (<=5ms), capacity dip + 2s blackout")
	fmt.Println()
	fmt.Printf("%-14s %10s %10s %10s %8s %12s\n",
		"scheme", "queue_pkts", "wire_loss", "queue_drop", "util", "retrans_ovh")

	for _, s := range []experiments.Scheme{experiments.PERT, experiments.SackDroptail} {
		var bottleneck *netem.Link
		r := experiments.RunDumbbell(experiments.DumbbellSpec{
			Seed:         7,
			Bandwidth:    30e6,
			RTTs:         []sim.Duration{60 * sim.Millisecond},
			Flows:        12,
			Duration:     sim.Seconds(50),
			MeasureFrom:  sim.Seconds(10),
			MeasureUntil: sim.Seconds(50),
			StartWindow:  sim.Seconds(5),
			LossRate:     0.01,
			DupRate:      0.001,
			ReorderRate:  0.005,
			ReorderExtra: 5 * sim.Millisecond,
			Schedule:     schedule,
			Instrument:   func(d *topo.Dumbbell) { bottleneck = d.Forward },
		}, s)
		st := bottleneck.Impairments()
		fmt.Printf("%-14s %10.1f %10d %10.2g %8.3f %12.2g\n",
			r.Scheme, r.AvgQueue, st.WireLost, r.DropRate, r.Utilization, r.RetransOverhead)
		fmt.Printf("%-14s blackholed during the outage: %d packets\n", "", st.Blackholed)
	}

	fmt.Println()
	fmt.Println("Every run above carried the conservation auditor; a violated invariant")
	fmt.Println("would have aborted with a repro bundle (seed, scenario, trailing trace).")
}
