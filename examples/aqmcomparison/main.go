// AQM comparison: run the same mixed workload (long flows plus web sessions)
// under all six scheme/queue combinations — the paper's comparison set plus
// the Section 6 PI pair — and print the four evaluation panels side by side.
package main

import (
	"fmt"

	"pert/internal/experiments"
	"pert/internal/sim"
)

func main() {
	spec := experiments.DumbbellSpec{
		Seed:         7,
		Bandwidth:    30e6,
		RTTs:         []sim.Duration{60 * sim.Millisecond},
		Flows:        12,
		WebSessions:  25,
		Duration:     sim.Seconds(50),
		MeasureFrom:  sim.Seconds(15),
		MeasureUntil: sim.Seconds(50),
		StartWindow:  sim.Seconds(5),
	}

	schemes := []experiments.Scheme{
		experiments.PERT,
		experiments.SackDroptail,
		experiments.SackRED,
		experiments.Vegas,
		experiments.PERTPI,
		experiments.SackPI,
	}

	fmt.Println("30 Mbps bottleneck, 60 ms RTT, 12 long flows + 25 web sessions")
	fmt.Printf("%-14s %10s %10s %10s %10s %8s\n",
		"scheme", "queue_pkts", "drop_rate", "mark_rate", "util", "jain")
	for _, s := range schemes {
		r := experiments.RunDumbbell(spec, s)
		fmt.Printf("%-14s %10.1f %10.2g %10.2g %10.3f %8.3f\n",
			s, r.AvgQueue, r.DropRate, r.MarkRate, r.Utilization, r.Jain)
	}
	fmt.Println("\nPERT variants run over plain DropTail: the AQM behaviour is")
	fmt.Println("emulated entirely in the end hosts' congestion response.")
}
