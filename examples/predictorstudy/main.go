// Predictorstudy: the Section 2 methodology end to end. Collect a trace
// from a congested dumbbell with a tagged flow, then replay every published
// congestion predictor over it and score prediction efficiency, false
// positives and false negatives against ground-truth queue-level losses —
// the analysis behind the paper's Figures 2 and 3.
package main

import (
	"fmt"

	"pert/internal/experiments"
	"pert/internal/predictors"
	"pert/internal/sim"
)

func main() {
	// A mid-sized case: 25 long flows (plus half reverse) and 250 web
	// sessions over a 50 Mbps bottleneck, 90 simulated seconds.
	c := experiments.Section2Case{Name: "demo", LongFlows: 25, Web: 250}
	tr := experiments.CollectTrace(c, 1, 50e6, 375, sim.Seconds(90), sim.Seconds(10))

	qLosses := predictors.CoalesceLosses(tr.QueueLosses, 60*sim.Millisecond)
	fLosses := predictors.CoalesceLosses(tr.FlowLosses, 60*sim.Millisecond)
	fmt.Printf("trace: %d per-ACK RTT samples, %d queue loss episodes, %d flow loss episodes\n\n",
		len(tr.Samples), len(qLosses), len(fLosses))

	// The Figure 2 comparison: the same high-RTT detector scored against
	// what the flow can see vs what the queue actually did.
	flowRes := predictors.Evaluate(predictors.NewRelativeThreshold("inst-rtt", 5*sim.Millisecond, nil), tr, fLosses)
	queueRes := predictors.Evaluate(predictors.NewRelativeThreshold("inst-rtt", 5*sim.Millisecond, nil), tr, qLosses)
	fmt.Printf("high-RTT -> loss fraction:  flow-level %.3f   queue-level %.3f\n",
		flowRes.Efficiency(), queueRes.Efficiency())
	fmt.Println("(the paper's point: flow-level measurement understates prediction accuracy)")
	fmt.Println()

	// The Figure 3 comparison across predictors.
	fmt.Printf("%-12s %10s %10s %10s\n", "predictor", "efficiency", "false_pos", "false_neg")
	for _, p := range predictors.Suite(5*sim.Millisecond, 375) {
		res := predictors.Evaluate(p, tr, qLosses)
		fmt.Printf("%-12s %10.3f %10.3f %10.3f\n",
			p.Name(), res.Efficiency(), res.FalsePositives(), res.FalseNegatives())
	}
	fmt.Println("\nsrtt_0.99 (ewma-0.99) is the signal PERT builds on: high efficiency,")
	fmt.Println("near-zero false positives, at the cost of reaction speed — which the")
	fmt.Println("probabilistic response function is designed to tolerate.")
}
