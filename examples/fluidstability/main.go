// Fluidstability: the paper's Section 5 control-theoretic toolkit. Evaluates
// the Theorem 1 stability condition across round-trip times, finds the
// stability boundary, derives the minimum sampling interval (eq. 13), and
// integrates the delay-differential model (eq. 14) to show the three regimes
// of Figure 13: monotone convergence, damped oscillation, and sustained
// oscillation.
package main

import (
	"fmt"
	"math"

	"pert/internal/fluid"
)

func params(rtt float64) fluid.PERTParams {
	return fluid.PERTParams{
		C: 100, N: 5, R: rtt, // 1 Mbps at 1250-byte packets, 5 flows
		Tmin: 0.05, Tmax: 0.1, Pmax: 0.1,
		Alpha: 0.99, Delta: 1e-4,
	}
}

func main() {
	p := params(0.1)
	boundary := fluid.StabilityBoundaryR(p, 0.05, 0.3, 0.001)
	fmt.Printf("Theorem 1 stability boundary: R = %.0f ms (paper: 171 ms)\n\n", boundary*1000)

	fmt.Printf("%-8s %-9s %-10s %-14s %s\n", "R_ms", "theorem1", "W*_pkts", "osc_amplitude", "regime")
	for _, rtt := range []float64{0.10, 0.16, 0.171, 0.19} {
		pp := params(rtt)
		_, _, stable := fluid.StableTheorem1(pp, pp.N, pp.R)
		wStar, _, _ := pp.Equilibrium()

		lateMin, lateMax := math.Inf(1), math.Inf(-1)
		pp.Trajectory(400, 1e-3, func(t float64, x []float64) {
			if t > 340 {
				lateMin = math.Min(lateMin, x[0])
				lateMax = math.Max(lateMax, x[0])
			}
		})
		amp := lateMax - lateMin
		regime := "converges"
		if amp > 0.1*wStar {
			regime = "oscillates"
		}
		fmt.Printf("%-8.0f %-9v %-10.2f %-14.3f %s\n", rtt*1000, stable, wStar, amp, regime)
	}

	fmt.Println("\nMinimum stable sampling interval (eq. 13, C = 1000 pkt/s, R = 200 ms):")
	big := fluid.PERTParams{C: 1000, N: 1, R: 0.2, Tmin: 0.05, Tmax: 0.1, Pmax: 0.1, Alpha: 0.99, Delta: 0.1}
	for _, n := range []float64{5, 10, 20, 40} {
		fmt.Printf("  N >= %2.0f flows: delta >= %.3f s\n", n, fluid.MinDelta(big, n, big.R))
	}
}
