// Webtraffic: mix long-lived PERT transfers with bursty web sessions
// (exponential think times, Pareto object sizes over real short TCP
// connections) and watch the early-response machinery absorb the bursts:
// the smoothed srtt_0.99 signal ignores transient spikes but reacts to
// sustained queue growth.
package main

import (
	"fmt"

	"pert/internal/netem"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/stats"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

func main() {
	eng := sim.NewEngine(3)
	net := netem.NewNetwork(eng)

	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth: 30e6,
		Delay:     20 * sim.Millisecond,
		Hosts:     24,
		RTTs:      []sim.Duration{60 * sim.Millisecond},
		Queue: func(limit int, _ float64) netem.Discipline {
			return queue.NewDropTail(limit)
		},
	})

	ids := trafficgen.NewIDs()
	pert := func() tcp.CongestionControl { return tcp.NewPERTRed() }

	long := trafficgen.FTPFleet(net, ids, d.Left, d.Right, 8, trafficgen.FTPConfig{
		CC:          pert,
		StartWindow: sim.Seconds(4),
	})
	web := trafficgen.WebFleet(net, ids, d.Left, d.Right, 40, trafficgen.WebConfig{
		MeanThink:      500 * sim.Millisecond,
		ParetoShape:    1.2,
		MeanObjectSegs: 12,
		CC:             pert, // an all-PERT world: web transfers respond early too
	}, sim.Seconds(4))

	eng.Run(sim.Seconds(10))
	meter := stats.NewMeter(d.Forward)
	meter.Start(eng.Now())
	qmon := stats.MonitorQueue(eng, d.Forward, eng.Now(), 10*sim.Millisecond)
	snap := trafficgen.GoodputSnapshot(long)
	eng.Run(sim.Seconds(60))

	var pages, objects uint64
	for _, s := range web {
		pages += s.Pages
		objects += s.Objects
	}
	fmt.Printf("web workload:      %d pages, %d objects fetched\n", pages, objects)
	fmt.Printf("avg queue:         %.1f / %d packets\n", qmon.Series.Mean(), d.BufferPkts)
	fmt.Printf("max queue:         %.0f packets\n", qmon.Series.Max())
	fmt.Printf("drop rate:         %.3g\n", meter.DropRate())
	fmt.Printf("utilization:       %.1f%%\n", 100*meter.Utilization(eng.Now()))
	fmt.Printf("long-flow Jain:    %.3f\n", stats.Jain(trafficgen.Goodputs(long, snap)))
}
