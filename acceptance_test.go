// Acceptance tests: fast, end-to-end checks of the paper's headline claims,
// run as part of the ordinary test suite (`go test .`). Each exercises the
// full stack — topology, TCP, queues, measurement — at reduced scale.
package pert

import (
	"testing"

	"pert/internal/experiments"
	"pert/internal/fluid"
	"pert/internal/sim"
)

// spec is a small steady-state dumbbell scenario shared by the claims.
func spec(seed int64) experiments.DumbbellSpec {
	return experiments.DumbbellSpec{
		Seed:         seed,
		Bandwidth:    20e6,
		RTTs:         []sim.Duration{60 * sim.Millisecond},
		Flows:        8,
		Duration:     sim.Seconds(30),
		MeasureFrom:  sim.Seconds(10),
		MeasureUntil: sim.Seconds(30),
		StartWindow:  sim.Seconds(3),
	}
}

// TestClaimAQMWithoutRouters is the paper's thesis: PERT over plain DropTail
// achieves the queue/loss profile of router AQM with ECN.
func TestClaimAQMWithoutRouters(t *testing.T) {
	pert := experiments.RunDumbbell(spec(1), experiments.PERT)
	droptail := experiments.RunDumbbell(spec(1), experiments.SackDroptail)
	red := experiments.RunDumbbell(spec(1), experiments.SackRED)

	if pert.AvgQueue >= droptail.AvgQueue/2 {
		t.Errorf("PERT queue %.1f vs DropTail %.1f: expected large reduction", pert.AvgQueue, droptail.AvgQueue)
	}
	if pert.DropRate > 1e-4 {
		t.Errorf("PERT drop rate %.2g, want ~0", pert.DropRate)
	}
	if pert.AvgQueue > 2*red.AvgQueue+10 {
		t.Errorf("PERT queue %.1f far above router RED %.1f", pert.AvgQueue, red.AvgQueue)
	}
	if pert.Utilization < 0.85 {
		t.Errorf("PERT utilization %.3f", pert.Utilization)
	}
	if pert.Jain < 0.98 {
		t.Errorf("PERT fairness %.3f", pert.Jain)
	}
}

// TestClaimRetainsMultiplicativeDecreaseFairness: unlike Vegas's AIAD early
// response, PERT keeps MD and with it near-perfect fairness among equal
// flows.
func TestClaimFairnessBeatsVegas(t *testing.T) {
	s := spec(2)
	s.Flows = 12
	pert := experiments.RunDumbbell(s, experiments.PERT)
	vegas := experiments.RunDumbbell(s, experiments.Vegas)
	if pert.Jain < vegas.Jain-0.005 {
		t.Errorf("PERT Jain %.3f below Vegas %.3f", pert.Jain, vegas.Jain)
	}
	if pert.Jain < 0.98 {
		t.Errorf("PERT Jain %.3f", pert.Jain)
	}
}

// TestClaimStabilityBoundary reproduces the Section 5 number: Theorem 1's
// certified boundary for the Figure 13 configuration is 171 ms.
func TestClaimStabilityBoundary(t *testing.T) {
	p := fluid.PERTParams{
		C: 100, N: 5, R: 0.1,
		Tmin: 0.05, Tmax: 0.1, Pmax: 0.1,
		Alpha: 0.99, Delta: 1e-4,
	}
	b := fluid.StabilityBoundaryR(p, 0.05, 0.3, 0.001)
	if b < 0.168 || b > 0.174 {
		t.Errorf("stability boundary %.3f s, paper says 0.171 s", b)
	}
}

// TestClaimPIEmulation: PERT emulating PI holds the queue near the target
// with essentially no drops (Section 6's preliminary result).
func TestClaimPIEmulation(t *testing.T) {
	r := experiments.RunDumbbell(spec(3), experiments.PERTPI)
	if r.DropRate > 1e-3 {
		t.Errorf("PERT/PI drop rate %.2g", r.DropRate)
	}
	if r.Utilization < 0.85 {
		t.Errorf("PERT/PI utilization %.3f", r.Utilization)
	}
}
