// Command pertpredict runs the Section 2 congestion-prediction study on a
// single configurable traffic case: it simulates the trace-collection
// topology with a tagged flow, then evaluates every predictor against
// queue-level and flow-level losses. Traces can be saved and re-analyzed
// without re-simulating.
//
// Examples:
//
//	pertpredict -flows 25 -web 250 -dur 150s
//	pertpredict -flows 25 -web 250 -save trace.json
//	pertpredict -load trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pert/internal/experiments"
	"pert/internal/predictors"
	"pert/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pertpredict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	flows := fs.Int("flows", 25, "long-term flows (forward; reverse gets half)")
	web := fs.Int("web", 250, "web sessions (forward; reverse gets half)")
	dur := fs.Duration("dur", 150*time.Second, "trace duration")
	scale := fs.String("scale", "quick", "quick (50 Mbps) or paper (100 Mbps) link sizing")
	save := fs.String("save", "", "after collecting, save the trace as JSON to this path")
	load := fs.String("load", "", "skip simulation and analyze a trace saved with -save")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	s := experiments.Scale(*scale)
	if !s.Valid() {
		fmt.Fprintf(stderr, "pertpredict: unknown scale %q\n", *scale)
		return 2
	}
	_, bw, buf, _, warm := experiments.Section2Cases(s)
	var tr *predictors.Trace
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(stderr, "pertpredict: %v\n", err)
			return 1
		}
		tr, err = predictors.LoadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "pertpredict: %v\n", err)
			return 1
		}
	} else {
		c := experiments.Section2Case{Name: "custom", LongFlows: *flows, Web: *web}
		tr = experiments.CollectTrace(c, 1, bw, buf, sim.Time(*dur), warm)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintf(stderr, "pertpredict: %v\n", err)
			return 1
		}
		err = tr.Save(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "pertpredict: %v\n", err)
			return 1
		}
	}

	fmt.Fprintf(stdout, "trace: %d RTT samples, %d queue drops, %d flow loss events\n\n",
		len(tr.Samples), len(tr.QueueLosses), len(tr.FlowLosses))

	qLosses := predictors.CoalesceLosses(tr.QueueLosses, 60*sim.Millisecond)
	fLosses := predictors.CoalesceLosses(tr.FlowLosses, 60*sim.Millisecond)

	fmt.Fprintf(stdout, "%-12s %28s %28s\n", "", "vs queue losses", "vs flow losses")
	fmt.Fprintf(stdout, "%-12s %9s %9s %8s %9s %9s %8s\n", "predictor", "eff", "falsePos", "falseNeg", "eff", "falsePos", "falseNeg")
	for i := range predictors.Suite(5*sim.Millisecond, buf) {
		pq := predictors.Suite(5*sim.Millisecond, buf)[i]
		pf := predictors.Suite(5*sim.Millisecond, buf)[i]
		rq := predictors.Evaluate(pq, tr, qLosses)
		rf := predictors.Evaluate(pf, tr, fLosses)
		fmt.Fprintf(stdout, "%-12s %9.3f %9.3f %8.3f %9.3f %9.3f %8.3f\n", pq.Name(),
			rq.Efficiency(), rq.FalsePositives(), rq.FalseNegatives(),
			rf.Efficiency(), rf.FalsePositives(), rf.FalseNegatives())
	}
	return 0
}
