package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCollectAnalyzeSaveLoad(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.json")

	var out1, errb bytes.Buffer
	code := run([]string{"-flows", "4", "-web", "5", "-dur", "15s", "-save", trace}, &out1, &errb)
	if code != 0 {
		t.Fatalf("collect exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out1.String(), "ewma-0.99") {
		t.Fatalf("predictor table missing:\n%s", out1.String())
	}
	if st, err := os.Stat(trace); err != nil || st.Size() == 0 {
		t.Fatalf("trace not saved: %v", err)
	}

	// Re-analysis from the saved trace must reproduce the table exactly.
	var out2 bytes.Buffer
	if code := run([]string{"-load", trace}, &out2, &errb); code != 0 {
		t.Fatalf("load exit %d: %s", code, errb.String())
	}
	if out1.String() != out2.String() {
		t.Fatal("saved-trace analysis differs from original")
	}
}

func TestErrorPaths(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scale", "giant"}, &out, &errb); code != 2 {
		t.Fatalf("bad scale exit = %d", code)
	}
	if code := run([]string{"-load", "/nonexistent.json"}, &out, &errb); code != 1 {
		t.Fatalf("missing trace exit = %d", code)
	}
	if code := run([]string{"-zzz"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit = %d", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if code := run([]string{"-load", bad}, &out, &errb); code != 1 {
		t.Fatalf("corrupt trace exit = %d", code)
	}
}
