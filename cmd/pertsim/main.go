// Command pertsim runs one single-bottleneck scenario and reports the
// paper's four panels (queue, drops, utilization, fairness) plus latency
// percentiles, optionally emitting a packet trace and a queue-length time
// series.
//
// Examples:
//
//	pertsim -scheme PERT -bw 50e6 -rtt 60ms -flows 20 -web 50 -dur 60s
//	pertsim -config scenario.json -trace pkts.tr -qseries queue.csv
//	pertsim -config mixed.json              # schema v2: any topology/groups
//	pertsim -config mixed.json -validate    # check a scenario without running
//	pertsim -config mixed.json -cache-dir results/cache   # replay if committed
//	pertsim -scheme Vegas -json     # one-row table in the stable JSON schema
//	pertsim -loss 0.01 -reorder 0.001 -dup 0.0005   # injected wire faults
//
// A -config file may use either the legacy flat dumbbell schema or scenario
// schema v2 (a "topology"/"groups" object — see EXPERIMENTS.md); v2 files
// run through the scenario compiler and may mix schemes and templates. V2
// runs execute under the harness, so they honor -timeout, -stall-window,
// and the content-addressed result cache (-cache-dir): a committed run
// replays instantly, byte-identical tables included.
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pert/internal/experiments"
	"pert/internal/harness"
	"pert/internal/harness/cliconfig"
	"pert/internal/netem"
	"pert/internal/obs"
	"pert/internal/scenario"
	"pert/internal/sim"
	"pert/internal/topo"
)

func main() {
	harness.MaybeWorker() // never returns when spawned as a -isolate cell worker
	ctx, stop := harness.NotifyShutdown(context.Background())
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pertsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	shared := cliconfig.New(fs)
	shared.SeedFlag(1)
	scheme := fs.String("scheme", "PERT", strings.Join(scenario.Names(), " | "))
	bw := fs.Float64("bw", 50e6, "bottleneck bandwidth, bits/s")
	rtt := fs.Duration("rtt", 60*time.Millisecond, "end-to-end propagation RTT (comma list via -rtts overrides)")
	rtts := fs.String("rtts", "", "comma-separated RTT list for heterogeneous flows, e.g. 12ms,24ms,36ms")
	flows := fs.Int("flows", 10, "forward long-term flows")
	revFlows := fs.Int("reverse", 0, "reverse long-term flows")
	web := fs.Int("web", 0, "forward web sessions")
	buffer := fs.Int("buffer", 0, "bottleneck buffer in packets (0 = BDP with 2*flows floor)")
	dur := fs.Duration("dur", 60*time.Second, "simulated duration")
	warm := fs.Duration("warm", 15*time.Second, "measurement window start")
	jitter := fs.Duration("jitter", 0, "uniform per-packet access-link delay jitter bound")
	loss := fs.Float64("loss", 0, "non-congestive wire-loss probability on the bottleneck, [0,1)")
	dup := fs.Float64("dup", 0, "packet duplication probability on the bottleneck, [0,1)")
	reorder := fs.Float64("reorder", 0, "packet reordering probability on the bottleneck, [0,1)")
	reorderExtra := fs.Duration("reorder-extra", 5*time.Millisecond, "extra holding delay bound for reordered packets")
	jsonOut := fs.Bool("json", false, "emit the result as a one-row JSON table (schema in EXPERIMENTS.md)")
	config := fs.String("config", "", "load the scenario from a JSON file (overrides topology/traffic flags); legacy flat schema or scenario schema v2")
	validate := fs.Bool("validate", false, "with -config: parse and validate the scenario, print its summary, and exit without running")
	tracePath := fs.String("trace", "", "write an ns-2-style packet trace of the bottleneck to this file")
	qseriesPath := fs.String("qseries", "", "write a queue-length time series (CSV) to this file")
	metricsPath := fs.String("metrics", "", "write the run's full time series (queue, per-flow cwnd/srtt, PERT signal) to this file; .csv suffix selects CSV, anything else JSONL (schema in EXPERIMENTS.md)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProfiles, err := shared.StartProfiles()
	if err != nil {
		fmt.Fprintf(stderr, "pertsim: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "pertsim: %v\n", err)
		}
	}()
	if !experiments.Scheme(*scheme).Known() {
		fmt.Fprintf(stderr, "pertsim: unknown scheme %q (known: %s)\n", *scheme, strings.Join(scenario.Names(), ", "))
		return 2
	}
	if *validate && *config == "" {
		fmt.Fprintln(stderr, "pertsim: -validate requires -config")
		return 2
	}
	if shared.FsckRequested() {
		return shared.RunFsck(stdout, stderr)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"-loss", *loss}, {"-dup", *dup}, {"-reorder", *reorder}} {
		if p.v < 0 || p.v >= 1 {
			fmt.Fprintf(stderr, "pertsim: %s %g outside [0,1)\n", p.name, p.v)
			return 2
		}
	}

	spec := experiments.DumbbellSpec{
		Seed:         shared.Seed(),
		Bandwidth:    *bw,
		Flows:        *flows,
		ReverseFlows: *revFlows,
		WebSessions:  *web,
		BufferPkts:   *buffer,
		Duration:     sim.Time(*dur),
		MeasureFrom:  sim.Time(*warm),
		MeasureUntil: sim.Time(*dur),
		StartWindow:  sim.Time(*warm) / 2,
		AccessJitter: sim.Time(*jitter),
		LossRate:     *loss,
		DupRate:      *dup,
		ReorderRate:  *reorder,
		ReorderExtra: sim.Time(*reorderExtra),
	}
	if *rtts != "" {
		for _, s := range strings.Split(*rtts, ",") {
			d, err := time.ParseDuration(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(stderr, "pertsim: bad -rtts entry %q: %v\n", s, err)
				return 2
			}
			spec.RTTs = append(spec.RTTs, sim.Time(d))
		}
	} else {
		spec.RTTs = []sim.Duration{sim.Time(*rtt)}
	}

	if *config != "" {
		raw, err := os.ReadFile(*config)
		if err != nil {
			fmt.Fprintf(stderr, "pertsim: %v\n", err)
			return 1
		}
		if scenario.IsV2(raw) {
			return runV2(ctx, raw, shared, *validate, *jsonOut, stdout, stderr)
		}
		loaded, sch, err := experiments.LoadScenario(bytes.NewReader(raw))
		if err != nil {
			fmt.Fprintf(stderr, "pertsim: %v\n", err)
			return 1
		}
		if *validate {
			fmt.Fprintf(stdout, "pertsim: %s is a valid legacy dumbbell scenario (scheme %s, %d+%d flows, %d web)\n",
				*config, sch, loaded.Flows, loaded.ReverseFlows, loaded.WebSessions)
			return 0
		}
		spec = loaded
		*scheme = string(sch)
	}
	if shared.CacheRequested() {
		// Ad-hoc flag runs carry Go-only instrumentation hooks and are not
		// content-addressable; only schema-v2 configs run through the cache.
		fmt.Fprintln(stderr, "pertsim: -cache-dir requires a schema-v2 -config (see EXPERIMENTS.md)")
		return 2
	}
	if shared.IsolateRequested() {
		// Same restriction: only harness-routed (schema-v2) runs can re-exec
		// their cell in a worker process.
		fmt.Fprintln(stderr, "pertsim: -isolate requires a schema-v2 -config (see EXPERIMENTS.md)")
		return 2
	}

	var cleanups []func()
	if *tracePath != "" {
		w, closeFn, err := createBuffered(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "pertsim: %v\n", err)
			return 1
		}
		cleanups = append(cleanups, closeFn)
		prev := spec.Instrument
		spec.Instrument = func(d *topo.Dumbbell) {
			if prev != nil {
				prev(d)
			}
			netem.NewTracer(w).Attach(d.Forward)
		}
	}
	if *qseriesPath != "" {
		w, closeFn, err := createBuffered(*qseriesPath)
		if err != nil {
			fmt.Fprintf(stderr, "pertsim: %v\n", err)
			return 1
		}
		cleanups = append(cleanups, closeFn)
		prev := spec.Instrument
		spec.Instrument = func(d *topo.Dumbbell) {
			if prev != nil {
				prev(d)
			}
			fmt.Fprintln(w, "t_s,queue_pkts")
			d.Net.Engine().Every(0, 10*sim.Millisecond, func(now sim.Time) {
				fmt.Fprintf(w, "%.3f,%d\n", now.Seconds(), d.Forward.Queue.Len())
			})
		}
	}

	var metricsClose func() error
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(stderr, "pertsim: %v\n", err)
			return 1
		}
		var sw *obs.SeriesWriter
		if strings.HasSuffix(*metricsPath, ".csv") {
			sw = obs.NewCSVWriter(f)
		} else {
			sw = obs.NewJSONLWriter(f)
		}
		spec.Metrics = &experiments.MetricsSpec{Sink: sw, Interval: sim.Duration(shared.MetricsInterval())}
		metricsClose = func() error {
			err := sw.Flush()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		}
	}

	res := experiments.RunDumbbell(spec, experiments.Scheme(*scheme))
	for _, c := range cleanups {
		c()
	}
	if metricsClose != nil {
		if err := metricsClose(); err != nil {
			fmt.Fprintf(stderr, "pertsim: %v\n", err)
			return 1
		}
	}
	if *jsonOut {
		if err := resultTable(spec, res).FprintJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "pertsim: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(stdout, "scheme         %s\n", res.Scheme)
	fmt.Fprintf(stdout, "buffer         %d packets\n", res.BufferPkts)
	fmt.Fprintf(stdout, "avg queue      %.2f packets (%.3f of buffer)\n", res.AvgQueue, res.NormQueue)
	fmt.Fprintf(stdout, "sojourn p50    %.2f ms\n", res.DelayP50*1000)
	fmt.Fprintf(stdout, "sojourn p99    %.2f ms\n", res.DelayP99*1000)
	fmt.Fprintf(stdout, "drop rate      %.3g\n", res.DropRate)
	fmt.Fprintf(stdout, "mark rate      %.3g\n", res.MarkRate)
	fmt.Fprintf(stdout, "utilization    %.3f\n", res.Utilization)
	fmt.Fprintf(stdout, "jain fairness  %.3f\n", res.Jain)
	return 0
}

// runV2 handles a schema-v2 config: validate (and stop, if asked), then run
// it as a one-cell harness sweep — which is what routes single pertsim runs
// through the content-addressed result cache and the watchdogs — and render
// the standard panels from the report.
func runV2(ctx context.Context, raw []byte, shared *cliconfig.Builder,
	validateOnly, jsonOut bool, stdout, stderr io.Writer) int {

	sp, err := scenario.Load(bytes.NewReader(raw))
	if err != nil {
		fmt.Fprintf(stderr, "pertsim: %v\n", err)
		return 1
	}
	spec, err := shared.Spec()
	if err != nil {
		fmt.Fprintf(stderr, "pertsim: %v\n", err)
		return 2
	}
	if spec.Shards > 0 {
		// The flag overrides the document's shard count (-shards 1 forces a
		// sharded file serial; 0 means unset, keep the file's value). It
		// folds into the scenario spec itself — the canonicalized spec is
		// what the cache key hashes — and the merged spec must re-validate
		// (shard-safety is stricter than the serial rules the file was
		// loaded under). This happens before -validate so that "validate
		// with -shards N" answers the question actually being asked.
		sp.Shards = spec.Shards
		spec.Shards = 0
		if err := sp.Validate(); err != nil {
			fmt.Fprintf(stderr, "pertsim: %v\n", err)
			return 2
		}
	}
	if validateOnly {
		name := sp.Name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Fprintf(stdout, "pertsim: %s is a valid v2 scenario (%s, %d groups, %d link rules)\n",
			name, sp.Topology.Template, len(sp.Groups), len(sp.Links))
		return 0
	}
	spec.Scenario = &sp
	rep, err := harness.Run(ctx, spec)
	if err != nil {
		fmt.Fprintf(stderr, "pertsim: %v\n", err)
		return 1
	}
	if len(rep.Runs) == 0 {
		fmt.Fprintln(stderr, "pertsim: no run produced")
		return 1
	}
	rec := rep.Runs[len(rep.Runs)-1]
	if rec.Error != "" {
		fmt.Fprintf(stderr, "pertsim: %s\n", rec.Error)
		return 1
	}
	if len(rec.Tables) == 0 {
		fmt.Fprintln(stderr, "pertsim: run produced no table")
		return 1
	}
	t := rec.Tables[0]
	if jsonOut {
		if err := t.FprintJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "pertsim: %v\n", err)
			return 1
		}
		return 0
	}
	t.Fprint(stdout)
	if rec.Cached && len(rec.CacheKey) >= 12 {
		fmt.Fprintf(stderr, "pertsim: replayed from cache (%s)\n", rec.CacheKey[:12])
	}
	return 0
}

// resultTable renders one scenario result in the stable JSON table schema,
// so single runs feed the same plotting pipelines as pertbench sweeps.
func resultTable(spec experiments.DumbbellSpec, res experiments.DumbbellResult) *experiments.Table {
	t := &experiments.Table{
		ID:    "pertsim",
		Title: "Single-bottleneck scenario result",
		Header: []string{"scheme", "seed", "buffer_pkts", "avg_queue_pkts", "norm_queue",
			"delay_p50_ms", "delay_p99_ms", "drop_rate", "mark_rate", "utilization", "jain"},
		Units: map[string]string{
			"buffer_pkts":    "packets",
			"avg_queue_pkts": "packets",
			"norm_queue":     "fraction of buffer",
			"delay_p50_ms":   "ms",
			"delay_p99_ms":   "ms",
			"drop_rate":      "fraction",
			"mark_rate":      "fraction",
			"utilization":    "fraction",
			"jain":           "index",
		},
	}
	t.AddRow(string(res.Scheme), fmt.Sprint(spec.Seed), fmt.Sprint(res.BufferPkts),
		fmt.Sprintf("%.2f", res.AvgQueue), fmt.Sprintf("%.3f", res.NormQueue),
		fmt.Sprintf("%.2f", res.DelayP50*1000), fmt.Sprintf("%.2f", res.DelayP99*1000),
		fmt.Sprintf("%.3g", res.DropRate), fmt.Sprintf("%.3g", res.MarkRate),
		fmt.Sprintf("%.3f", res.Utilization), fmt.Sprintf("%.3f", res.Jain))
	return t
}

// createBuffered opens path for writing with a buffer; the returned func
// flushes and closes.
func createBuffered(path string) (io.Writer, func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	return w, func() {
		w.Flush()
		f.Close()
	}, nil
}
