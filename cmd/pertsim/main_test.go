package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBasicRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-scheme", "PERT", "-bw", "10e6", "-flows", "3",
		"-dur", "12s", "-warm", "4s"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"scheme         PERT", "avg queue", "utilization", "sojourn p99"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestTraceAndQSeriesFiles(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "p.tr")
	qs := filepath.Join(dir, "q.csv")
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-flows", "2", "-bw", "5e6", "-dur", "6s", "-warm", "2s",
		"-trace", tr, "-qseries", qs}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	trData, err := os.ReadFile(tr)
	if err != nil || len(trData) == 0 {
		t.Fatalf("trace file: %v, %d bytes", err, len(trData))
	}
	qsData, err := os.ReadFile(qs)
	if err != nil || !strings.HasPrefix(string(qsData), "t_s,queue_pkts\n") {
		t.Fatalf("qseries file: %v, %q", err, string(qsData[:min(30, len(qsData))]))
	}
}

func TestConfigFile(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "sc.json")
	os.WriteFile(cfg, []byte(`{"scheme":"Vegas","bandwidth_bps":5e6,"flows":2,"duration":"8s","measure_from":"2s"}`), 0o644)
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-config", cfg}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "scheme         Vegas") {
		t.Fatalf("config scheme not applied:\n%s", out.String())
	}
}

func TestHeterogeneousRTTs(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-rtts", "20ms,40ms", "-flows", "2", "-bw", "5e6",
		"-dur", "8s", "-warm", "2s"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-scheme", "PERT", "-bw", "10e6", "-flows", "3",
		"-dur", "12s", "-warm", "4s", "-seed", "9", "-json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var tab struct {
		ID      string            `json:"id"`
		Columns []string          `json:"columns"`
		Rows    [][]string        `json:"rows"`
		Units   map[string]string `json:"units"`
	}
	if err := json.Unmarshal(out.Bytes(), &tab); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if tab.ID != "pertsim" || len(tab.Rows) != 1 {
		t.Fatalf("table: %+v", tab)
	}
	if len(tab.Rows[0]) != len(tab.Columns) {
		t.Fatalf("row width %d vs %d columns", len(tab.Rows[0]), len(tab.Columns))
	}
	if tab.Rows[0][0] != "PERT" || tab.Rows[0][1] != "9" {
		t.Fatalf("row: %v", tab.Rows[0])
	}
	if tab.Units["avg_queue_pkts"] != "packets" {
		t.Fatalf("units: %v", tab.Units)
	}
}

func TestErrorPaths(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-rtts", "garbage"}, &out, &errb); code != 2 {
		t.Fatalf("bad rtts exit = %d", code)
	}
	if code := run(context.Background(), []string{"-scheme", "TURBO"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scheme exit = %d", code)
	}
	if code := run(context.Background(), []string{"-config", "/nonexistent/x.json"}, &out, &errb); code != 1 {
		t.Fatalf("missing config exit = %d", code)
	}
	if code := run(context.Background(), []string{"-wat"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit = %d", code)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestV2ConfigCache: a schema-v2 run with -cache-dir replays on the second
// invocation with identical table output.
func TestV2ConfigCache(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "v2.json")
	os.WriteFile(cfg, []byte(`{
		"name": "cache-test", "seed": 3,
		"duration": "8s", "measure_from": "2s",
		"topology": {"template": "dumbbell", "bandwidth_bps": 5e6},
		"groups": [{"scheme": "PERT", "count": 2, "from": "left", "to": "right"}]
	}`), 0o644)
	cache := filepath.Join(dir, "cache")
	args := []string{"-config", cfg, "-json", "-cache-dir", cache}

	var out1, out2, errb bytes.Buffer
	if code := run(context.Background(), args, &out1, &errb); code != 0 {
		t.Fatalf("cold exit %d: %s", code, errb.String())
	}
	errb.Reset()
	if code := run(context.Background(), args, &out2, &errb); code != 0 {
		t.Fatalf("warm exit %d: %s", code, errb.String())
	}
	if out1.String() != out2.String() {
		t.Fatalf("replayed table differs:\n%s\nvs\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(out1.String(), `"id"`) {
		t.Fatalf("not a table: %s", out1.String())
	}
}

func TestCacheRequiresV2Config(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-flows", "2", "-dur", "6s", "-cache-dir", t.TempDir()}, &out, &errb); code != 2 {
		t.Fatalf("cache without v2 config exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "schema-v2") {
		t.Fatalf("error message: %s", errb.String())
	}
}

func TestIsolateRequiresV2Config(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-flows", "2", "-dur", "6s", "-isolate"}, &out, &errb); code != 2 {
		t.Fatalf("ad-hoc -isolate exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "schema-v2") {
		t.Fatalf("error message: %s", errb.String())
	}
}

func TestCacheFsck(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-cache-fsck"}, &out, &errb); code != 2 {
		t.Fatalf("fsck without -cache-dir exit = %d", code)
	}
	out.Reset()
	errb.Reset()
	if code := run(context.Background(), []string{"-cache-fsck", "-cache-dir", t.TempDir()}, &out, &errb); code != 0 {
		t.Fatalf("fsck on empty cache exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "0 cells checked") {
		t.Fatalf("fsck summary: %q", out.String())
	}
}

// TestV2ShardsFlag: the -shards flag overrides a v2 document's shard count
// in both directions — forcing a sharded file serial (-shards 1, no shards
// note) and sharding a serial file (-shards 2, note present) — and
// -validate applies the stricter shard rules to the merged spec.
func TestV2ShardsFlag(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "lot.json")
	os.WriteFile(cfg, []byte(`{
		"name": "lot", "seed": 5, "shards": 4,
		"topology": {"template": "parkinglot", "routers": 3, "cloud_size": 2, "core_bw_bps": 8e6},
		"groups": [
			{"scheme": "PERT", "count": 2, "from": "cloud1", "to": "cloud2", "start_window": "1s"},
			{"scheme": "PERT", "count": 2, "from": "cloud2", "to": "cloud3", "start_window": "1s"}
		],
		"duration": "6s", "measure_from": "2s"
	}`), 0o644)

	var serial, sharded, errb bytes.Buffer
	if code := run(context.Background(), []string{"-config", cfg, "-shards", "1"}, &serial, &errb); code != 0 {
		t.Fatalf("-shards 1 exit %d: %s", code, errb.String())
	}
	if strings.Contains(serial.String(), "shards=") {
		t.Fatalf("-shards 1 did not force the serial path:\n%s", serial.String())
	}
	errb.Reset()
	if code := run(context.Background(), []string{"-config", cfg, "-shards", "2"}, &sharded, &errb); code != 0 {
		t.Fatalf("-shards 2 exit %d: %s", code, errb.String())
	}
	if !strings.Contains(sharded.String(), "shards=2 events_per_shard=") {
		t.Fatalf("-shards 2 note missing:\n%s", sharded.String())
	}

	// A serial-only feature (a delay-changing schedule; capacity changes and
	// flaps shard fine) must fail -validate once the flag requests sharding,
	// and still pass without it.
	bad := filepath.Join(dir, "sched.json")
	os.WriteFile(bad, []byte(`{
		"name": "sched", "seed": 5,
		"topology": {"template": "parkinglot", "routers": 3, "cloud_size": 2, "core_bw_bps": 8e6},
		"groups": [{"scheme": "PERT", "count": 2, "from": "cloud1", "to": "cloud2", "start_window": "1s"}],
		"links": [{"link": "core1", "schedule": [{"at": "3s", "delay": "9ms"}]}],
		"duration": "6s", "measure_from": "2s"
	}`), 0o644)
	var out bytes.Buffer
	errb.Reset()
	if code := run(context.Background(), []string{"-config", bad, "-validate"}, &out, &errb); code != 0 {
		t.Fatalf("serial -validate exit %d: %s", code, errb.String())
	}
	errb.Reset()
	if code := run(context.Background(), []string{"-config", bad, "-validate", "-shards", "4"}, &out, &errb); code != 2 {
		t.Fatalf("sharded -validate exit %d (want 2): %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "schedule") {
		t.Fatalf("rejection should name the schedule: %s", errb.String())
	}
}
