package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBasicRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-scheme", "PERT", "-bw", "10e6", "-flows", "3",
		"-dur", "12s", "-warm", "4s"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"scheme         PERT", "avg queue", "utilization", "sojourn p99"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestTraceAndQSeriesFiles(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "p.tr")
	qs := filepath.Join(dir, "q.csv")
	var out, errb bytes.Buffer
	code := run([]string{"-flows", "2", "-bw", "5e6", "-dur", "6s", "-warm", "2s",
		"-trace", tr, "-qseries", qs}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	trData, err := os.ReadFile(tr)
	if err != nil || len(trData) == 0 {
		t.Fatalf("trace file: %v, %d bytes", err, len(trData))
	}
	qsData, err := os.ReadFile(qs)
	if err != nil || !strings.HasPrefix(string(qsData), "t_s,queue_pkts\n") {
		t.Fatalf("qseries file: %v, %q", err, string(qsData[:min(30, len(qsData))]))
	}
}

func TestConfigFile(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "sc.json")
	os.WriteFile(cfg, []byte(`{"scheme":"Vegas","bandwidth_bps":5e6,"flows":2,"duration":"8s","measure_from":"2s"}`), 0o644)
	var out, errb bytes.Buffer
	if code := run([]string{"-config", cfg}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "scheme         Vegas") {
		t.Fatalf("config scheme not applied:\n%s", out.String())
	}
}

func TestHeterogeneousRTTs(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-rtts", "20ms,40ms", "-flows", "2", "-bw", "5e6",
		"-dur", "8s", "-warm", "2s"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-scheme", "PERT", "-bw", "10e6", "-flows", "3",
		"-dur", "12s", "-warm", "4s", "-seed", "9", "-json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var tab struct {
		ID      string            `json:"id"`
		Columns []string          `json:"columns"`
		Rows    [][]string        `json:"rows"`
		Units   map[string]string `json:"units"`
	}
	if err := json.Unmarshal(out.Bytes(), &tab); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if tab.ID != "pertsim" || len(tab.Rows) != 1 {
		t.Fatalf("table: %+v", tab)
	}
	if len(tab.Rows[0]) != len(tab.Columns) {
		t.Fatalf("row width %d vs %d columns", len(tab.Rows[0]), len(tab.Columns))
	}
	if tab.Rows[0][0] != "PERT" || tab.Rows[0][1] != "9" {
		t.Fatalf("row: %v", tab.Rows[0])
	}
	if tab.Units["avg_queue_pkts"] != "packets" {
		t.Fatalf("units: %v", tab.Units)
	}
}

func TestErrorPaths(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rtts", "garbage"}, &out, &errb); code != 2 {
		t.Fatalf("bad rtts exit = %d", code)
	}
	if code := run([]string{"-scheme", "TURBO"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scheme exit = %d", code)
	}
	if code := run([]string{"-config", "/nonexistent/x.json"}, &out, &errb); code != 1 {
		t.Fatalf("missing config exit = %d", code)
	}
	if code := run([]string{"-wat"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit = %d", code)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
