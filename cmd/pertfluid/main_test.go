package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTrajectoryCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "trajectory", "-dur", "2s", "-every", "500"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "t,window_pkts,queue_delay_s,smoothed_delay_s" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 4 {
		t.Fatalf("only %d lines", len(lines))
	}
	if !strings.Contains(errb.String(), "equilibrium") {
		t.Fatal("no equilibrium summary on stderr")
	}
}

func TestStabilityMode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "stability", "-r", "100ms", "-delta", "100us"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "stable=true") {
		t.Fatalf("expected stable at 100 ms:\n%s", s)
	}
	if !strings.Contains(s, "0.170s") && !strings.Contains(s, "0.171s") {
		t.Fatalf("boundary missing:\n%s", s)
	}
}

func TestMinDeltaMode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "mindelta", "-c", "1000", "-r", "200ms"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 51 { // header + N=1..50
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestBadModeAndBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad mode exit = %d", code)
	}
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit = %d", code)
	}
}

func TestHybridMode(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-mode", "hybrid", "-c", "1e7", "-n", "1e5", "-r", "60ms",
		"-tmin", "5ms", "-tmax", "105ms", "-delta", "100us",
		"-aprate", "120000", "-dur", "20s", "-every", "5000"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "hybrid equilibrium") {
		t.Fatal("no hybrid equilibrium summary on stderr")
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "t,window_pkts,queue_delay_s,smoothed_delay_s" {
		t.Fatalf("header = %q", lines[0])
	}
	// The trajectory must settle at the shifted equilibrium W* = (C-ap)R/N
	// = 5.928 pkts: the last emitted window should sit within 1%.
	last := strings.Split(lines[len(lines)-1], ",")
	if !strings.HasPrefix(last[1], "5.9") {
		t.Fatalf("final window %q, want ~5.93", last[1])
	}
}
