// Command pertfluid integrates the PERT/RED fluid model (Section 5) and
// evaluates the Theorem 1 stability condition. It can emit trajectories as
// CSV for plotting (Figure 13b-d) or sweep the minimum sampling interval
// (Figure 13a).
//
// Examples:
//
//	pertfluid -mode trajectory -r 160ms -dur 200s > traj.csv
//	pertfluid -mode stability -r 171ms
//	pertfluid -mode mindelta
//	pertfluid -mode hybrid -c 1e7 -n 1e5 -r 60ms -aprate 120000 > hybrid.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pert/internal/fluid"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pertfluid", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "trajectory", "trajectory | stability | mindelta | hybrid")
	c := fs.Float64("c", 100, "link capacity, packets/second")
	n := fs.Float64("n", 5, "number of flows")
	r := fs.Duration("r", 100*time.Millisecond, "round-trip time")
	tmin := fs.Duration("tmin", 50*time.Millisecond, "lower delay threshold")
	tmax := fs.Duration("tmax", 100*time.Millisecond, "upper delay threshold")
	pmax := fs.Float64("pmax", 0.1, "response probability at tmax")
	alpha := fs.Float64("alpha", 0.99, "EWMA history weight")
	delta := fs.Duration("delta", 100*time.Microsecond, "sampling interval")
	dur := fs.Duration("dur", 200*time.Second, "integration horizon")
	step := fs.Duration("step", time.Millisecond, "integration step")
	every := fs.Int("every", 100, "emit every k-th step in trajectory mode")
	apRate := fs.Float64("aprate", 0, "hybrid mode: foreground packet arrival rate, packets/second")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	p := fluid.PERTParams{
		C: *c, N: *n, R: r.Seconds(),
		Tmin: tmin.Seconds(), Tmax: tmax.Seconds(), Pmax: *pmax,
		Alpha: *alpha, Delta: delta.Seconds(),
	}

	switch *mode {
	case "trajectory":
		w, pr, tq := p.Equilibrium()
		fmt.Fprintf(stderr, "equilibrium: W*=%.3f pkts  p*=%.4f  Tq*=%.4fs\n", w, pr, tq)
		fmt.Fprintln(stdout, "t,window_pkts,queue_delay_s,smoothed_delay_s")
		i := 0
		p.Trajectory(dur.Seconds(), step.Seconds(), func(t float64, x []float64) {
			if i%*every == 0 {
				fmt.Fprintf(stdout, "%.3f,%.4f,%.5f,%.5f\n", t, x[0], x[1], x[2])
			}
			i++
		})
	case "stability":
		lhs, rhs, ok := fluid.StableTheorem1(p, p.N, p.R)
		fmt.Fprintf(stdout, "Theorem 1: lhs=%.4f rhs=%.4f stable=%v\n", lhs, rhs, ok)
		fmt.Fprintf(stdout, "equilibrium feasible (p* <= pmax): %v\n", fluid.EquilibriumFeasible(p))
		b := fluid.StabilityBoundaryR(p, 0.01, 2.0, 0.001)
		fmt.Fprintf(stdout, "stability boundary in R (this config): %.3fs\n", b)
	case "hybrid":
		// The hybrid coupling of DESIGN.md §10, driven by a constant
		// foreground rate: the aggregate yields (C - aprate)/C of the link
		// and settles at the shifted equilibrium. Advanced with the
		// resumable Stepper, the same API the netem co-simulation uses.
		w, pr, tq := p.HybridEquilibrium(*apRate)
		fmt.Fprintf(stderr, "hybrid equilibrium at %.0f pkt/s foreground: W*=%.3f pkts  p*=%.4f  Tq*=%.4fs\n",
			*apRate, w, pr, tq)
		sys := p.HybridSystem(fluid.HybridInputs{PacketRate: func() float64 { return *apRate }})
		st := fluid.NewStepper(sys, []float64{1, 0, 0}, 0, step.Seconds())
		fmt.Fprintln(stdout, "t,window_pkts,queue_delay_s,smoothed_delay_s")
		for i := 0; st.Time() < dur.Seconds(); i++ {
			if i%*every == 0 {
				x := st.State()
				fmt.Fprintf(stdout, "%.3f,%.4f,%.5f,%.5f\n", st.Time(), x[0], x[1], x[2])
			}
			st.Step()
		}
	case "mindelta":
		fmt.Fprintln(stdout, "n_min,min_delta_s")
		for nm := 1.0; nm <= 50; nm++ {
			fmt.Fprintf(stdout, "%.0f,%.6f\n", nm, fluid.MinDelta(p, nm, p.R))
		}
	default:
		fmt.Fprintf(stderr, "pertfluid: unknown mode %q\n", *mode)
		return 2
	}
	return 0
}
