// Command pertbench regenerates the paper's tables and figures, plus the
// extension experiments documented in EXPERIMENTS.md.
//
// Usage:
//
//	pertbench [-scale quick|paper] [-exp fig6,fig7,...|all] [-format text|json|csv]
//	          [-json] [-progress] [-parallel N] [-timeout D] [-stall-window D]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// Quick scale (default) shrinks bandwidth and duration while preserving the
// dimensionless shape of each experiment; paper scale runs the publication's
// exact parameters (much slower).
//
// -json emits one machine-readable report for the whole sweep (schema in
// EXPERIMENTS.md): per-run wall time, sim-event throughput, all tables, and
// error entries for runs that failed — a failing experiment does not stop
// the others. -progress streams per-run progress lines to stderr. Ctrl-C
// cancels the sweep between scenarios.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pert/internal/experiments"
	"pert/internal/harness"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pertbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scaleFlag := fs.String("scale", "quick", "experiment scale: quick or paper")
	expFlag := fs.String("exp", "all", "comma-separated experiment IDs (fig2..fig14, table1, ext-*) or 'all'")
	format := fs.String("format", "text", "output format: text, json, or csv")
	jsonReport := fs.Bool("json", false, "emit a single JSON report for the whole sweep (overrides -format)")
	progress := fs.Bool("progress", false, "stream per-run progress lines to stderr")
	parallel := fs.Int("parallel", 0, "simulation worker count for sweeps (0 = all cores)")
	timeout := fs.Duration("timeout", 0, "per-run timeout (0 = none); a timed-out run fails, the sweep continues")
	stallWindow := fs.Duration("stall-window", 0, "no-progress watchdog window (0 = off); a run whose sim counters stop advancing this long is marked stalled, the sweep continues")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file (go tool pprof)")
	memprofile := fs.String("memprofile", "", "write an allocation profile of the sweep to this file (go tool pprof)")
	metrics := fs.String("metrics", "", "write per-cell JSONL time series under this directory (DIR/<exp>/<cell>.jsonl); schema in EXPERIMENTS.md")
	metricsInterval := fs.Duration("metrics-interval", 0, "sampling period in sim time for -metrics (0 = 100ms)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProfiles, err := harness.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "pertbench: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "pertbench: %v\n", err)
		}
	}()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}

	scale := experiments.Scale(*scaleFlag)
	if !scale.Valid() {
		fmt.Fprintf(stderr, "pertbench: unknown scale %q (want quick or paper)\n", *scaleFlag)
		return 2
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(stderr, "pertbench: unknown format %q\n", *format)
		return 2
	}

	var ids []string
	if *expFlag == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*expFlag, ",")
	}
	var exps []experiments.Experiment
	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp, ok := experiments.ByID(id)
		if !ok {
			if *jsonReport {
				// In report mode an unknown ID becomes an error entry so
				// the rest of the sweep still runs and is recorded.
				exps = append(exps, failingExperiment(id))
				continue
			}
			fmt.Fprintf(stderr, "pertbench: unknown experiment %q (use -list)\n", id)
			return 2
		}
		exps = append(exps, exp)
	}

	opts := harness.Options{
		Workers: *parallel, Timeout: *timeout, StallWindow: *stallWindow,
		MetricsDir: *metrics, MetricsInterval: *metricsInterval,
	}
	if *progress {
		opts.Sink = harness.NewWriterSink(stderr)
		opts.ProgressInterval = time.Second
	}
	rep, runErr := harness.Run(ctx, exps, scale, opts)

	if *jsonReport {
		if err := rep.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "pertbench: %v\n", err)
			return 1
		}
		if runErr != nil {
			fmt.Fprintf(stderr, "pertbench: %v\n", runErr)
			return 1
		}
		if len(rep.Failed()) > 0 {
			for _, f := range rep.Failed() {
				fmt.Fprintf(stderr, "pertbench: %s: %s\n", f.ID, f.Error)
			}
			return 1
		}
		return 0
	}

	code := 0
	for _, rec := range rep.Runs {
		if rec.Error != "" {
			fmt.Fprintf(stderr, "pertbench: %s: %s\n", rec.ID, rec.Error)
			code = 1
			continue
		}
		for _, table := range rec.Tables {
			switch *format {
			case "json":
				if err := table.FprintJSON(stdout); err != nil {
					fmt.Fprintf(stderr, "pertbench: %v\n", err)
					return 1
				}
			case "csv":
				table.FprintCSV(stdout)
			case "text":
				table.Fprint(stdout)
			}
		}
		if *format == "text" {
			wall := time.Duration(rec.WallSeconds * float64(time.Second))
			fmt.Fprintf(stdout, "[%s completed in %v]\n\n", rec.ID, wall.Round(time.Millisecond))
		}
	}
	if runErr != nil {
		fmt.Fprintf(stderr, "pertbench: %v\n", runErr)
		return 1
	}
	return code
}

// failingExperiment is a placeholder whose run always errors — how report
// mode records experiment IDs that don't exist.
func failingExperiment(id string) experiments.Experiment {
	return experiments.Experiment{
		ID:    id,
		Title: "unknown experiment",
		Run: func(context.Context, experiments.Scale) ([]*experiments.Table, error) {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", id)
		},
	}
}
