// Command pertbench regenerates the paper's tables and figures, plus the
// extension experiments documented in EXPERIMENTS.md.
//
// Usage:
//
//	pertbench [-scale quick|paper] [-exp fig6,fig7,...|all] [-format text|json|csv]
//
// Quick scale (default) shrinks bandwidth and duration while preserving the
// dimensionless shape of each experiment; paper scale runs the publication's
// exact parameters (much slower).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pert/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pertbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scaleFlag := fs.String("scale", "quick", "experiment scale: quick or paper")
	expFlag := fs.String("exp", "all", "comma-separated experiment IDs (fig2..fig14, table1, ext-*) or 'all'")
	format := fs.String("format", "text", "output format: text, json, or csv")
	parallel := fs.Int("parallel", 0, "simulation worker count for sweeps (0 = all cores)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}

	scale := experiments.Scale(*scaleFlag)
	if !scale.Valid() {
		fmt.Fprintf(stderr, "pertbench: unknown scale %q (want quick or paper)\n", *scaleFlag)
		return 2
	}
	if *parallel > 0 {
		experiments.SetParallelism(*parallel)
	}

	var ids []string
	if *expFlag == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*expFlag, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runExp, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(stderr, "pertbench: unknown experiment %q (use -list)\n", id)
			return 2
		}
		start := time.Now()
		for _, table := range runExp(scale) {
			switch *format {
			case "json":
				if err := table.FprintJSON(stdout); err != nil {
					fmt.Fprintf(stderr, "pertbench: %v\n", err)
					return 1
				}
			case "csv":
				table.FprintCSV(stdout)
			case "text":
				table.Fprint(stdout)
			default:
				fmt.Fprintf(stderr, "pertbench: unknown format %q\n", *format)
				return 2
			}
		}
		if *format == "text" {
			fmt.Fprintf(stdout, "[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	return 0
}
