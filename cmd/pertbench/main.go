// Command pertbench regenerates the paper's tables and figures, plus the
// extension experiments documented in EXPERIMENTS.md.
//
// Usage:
//
//	pertbench [-scale quick|paper] [-exp fig6,fig7,...|all] [-format text|json|csv]
//	          [-json] [-progress] [-parallel N] [-timeout D] [-stall-window D]
//	          [-cache-dir DIR] [-cache MODE] [-cache-fsck] [-isolate]
//	          [-retries N] [-retry-backoff D] [-cpuprofile FILE] [-memprofile FILE]
//
// Quick scale (default) shrinks bandwidth and duration while preserving the
// dimensionless shape of each experiment; paper scale runs the publication's
// exact parameters (much slower).
//
// -json emits one machine-readable report for the whole sweep (schema in
// EXPERIMENTS.md): per-run wall time, sim-event throughput, all tables, and
// error entries for runs that failed — a failing experiment does not stop
// the others. -progress streams per-run progress lines to stderr. Ctrl-C
// cancels the sweep between scenarios.
//
// -cache-dir points the sweep at a content-addressed result cache: cells
// already committed there replay without simulating (marked "cached" in the
// report), and a sweep killed mid-run resumes exactly where it stopped when
// rerun with the same flags. Multiple pertbench processes may share one
// cache directory and will split the sweep between them.
//
// -isolate runs each cell in a re-exec'd worker process so a crash loses one
// cell, not the sweep; -retries N re-runs failed cells with exponential
// backoff; -cache-fsck repairs a cache directory after a crash and exits.
// The first Ctrl-C drains the in-flight cell and writes a partial report; a
// second kills in-flight workers immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pert/internal/experiments"
	"pert/internal/harness"
	"pert/internal/harness/cliconfig"
)

func main() {
	harness.MaybeWorker() // never returns when spawned as a -isolate cell worker
	ctx, stop := harness.NotifyShutdown(context.Background())
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pertbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	shared := cliconfig.New(fs)
	shared.ScaleFlag()
	shared.ExpFlag()
	shared.MetricsDirFlag()
	format := fs.String("format", "text", "output format: text, json, or csv")
	jsonReport := fs.Bool("json", false, "emit a single JSON report for the whole sweep (overrides -format)")
	progress := fs.Bool("progress", false, "stream per-run progress lines to stderr")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProfiles, err := shared.StartProfiles()
	if err != nil {
		fmt.Fprintf(stderr, "pertbench: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "pertbench: %v\n", err)
		}
	}()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	if shared.FsckRequested() {
		return shared.RunFsck(stdout, stderr)
	}

	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(stderr, "pertbench: unknown format %q\n", *format)
		return 2
	}
	spec, err := shared.Spec()
	if err != nil {
		fmt.Fprintf(stderr, "pertbench: %v\n", err)
		return 2
	}
	if !*jsonReport {
		// Outside report mode an unknown ID is a usage error; in report mode
		// the harness records it as an error entry and the sweep continues.
		for _, id := range spec.Experiments {
			if _, ok := experiments.ByID(id); !ok {
				fmt.Fprintf(stderr, "pertbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
		}
	}
	if *progress {
		spec.Sink = harness.NewWriterSink(stderr)
		spec.ProgressInterval = time.Second
	}
	rep, runErr := harness.Run(ctx, spec)
	if runErr != nil && shared.CacheRequested() {
		fmt.Fprintln(stderr, "pertbench: sweep interrupted; finished cells are committed — rerun the same command to resume")
	}

	if *jsonReport {
		if err := rep.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "pertbench: %v\n", err)
			return 1
		}
		if runErr != nil {
			fmt.Fprintf(stderr, "pertbench: %v\n", runErr)
			return 1
		}
		if len(rep.Failed()) > 0 {
			for _, f := range rep.Failed() {
				fmt.Fprintf(stderr, "pertbench: %s: %s\n", f.ID, f.Error)
			}
			return 1
		}
		return 0
	}

	code := 0
	for _, rec := range rep.Runs {
		if rec.Error != "" {
			fmt.Fprintf(stderr, "pertbench: %s: %s\n", rec.ID, rec.Error)
			code = 1
			continue
		}
		for _, table := range rec.Tables {
			switch *format {
			case "json":
				if err := table.FprintJSON(stdout); err != nil {
					fmt.Fprintf(stderr, "pertbench: %v\n", err)
					return 1
				}
			case "csv":
				table.FprintCSV(stdout)
			case "text":
				table.Fprint(stdout)
			}
		}
		if *format == "text" {
			if rec.Cached {
				fmt.Fprintf(stdout, "[%s replayed from cache]\n\n", rec.ID)
				continue
			}
			wall := time.Duration(rec.WallSeconds * float64(time.Second))
			fmt.Fprintf(stdout, "[%s completed in %v]\n\n", rec.ID, wall.Round(time.Millisecond))
		}
	}
	if runErr != nil {
		fmt.Fprintf(stderr, "pertbench: %v\n", runErr)
		return 1
	}
	return code
}
