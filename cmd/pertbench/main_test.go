package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListIDs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	ids := strings.Fields(out.String())
	if len(ids) < 15 {
		t.Fatalf("only %d experiments listed", len(ids))
	}
	for _, want := range []string{"fig2", "fig13", "table1", "ext-aqm"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing %q in %v", want, ids)
		}
	}
}

func TestFig5Text(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig5"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "== fig5:") || !strings.Contains(s, "completed in") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestFig13JSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig13", "-format", "json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	dec := json.NewDecoder(strings.NewReader(out.String()))
	var tables int
	for dec.More() {
		var v struct {
			ID   string
			Rows [][]string
		}
		if err := dec.Decode(&v); err != nil {
			t.Fatal(err)
		}
		if v.ID == "" || len(v.Rows) == 0 {
			t.Fatalf("empty table: %+v", v)
		}
		tables++
	}
	if tables != 2 { // fig13a + fig13bcd
		t.Fatalf("tables = %d", tables)
	}
}

func TestFig5CSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig5", "-format", "csv"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if first != "queueing_delay_ms,response_prob" {
		t.Fatalf("csv header = %q", first)
	}
}

func TestErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown experiment exit = %d", code)
	}
	if code := run([]string{"-scale", "huge"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scale exit = %d", code)
	}
	if code := run([]string{"-exp", "fig5", "-format", "xml"}, &out, &errb); code != 2 {
		t.Fatalf("unknown format exit = %d", code)
	}
	if code := run([]string{"-bogusflag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit = %d", code)
	}
}
