package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"pert/internal/harness"
)

// TestMain mirrors the real binary: the test executable doubles as the
// worker the supervisor re-execs for -isolate sweeps.
func TestMain(m *testing.M) {
	harness.MaybeWorker()
	os.Exit(m.Run())
}

func TestListIDs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	ids := strings.Fields(out.String())
	if len(ids) < 15 {
		t.Fatalf("only %d experiments listed", len(ids))
	}
	for _, want := range []string{"fig2", "fig13", "table1", "ext-aqm"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing %q in %v", want, ids)
		}
	}
}

func TestFig5Text(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "fig5"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "== fig5:") || !strings.Contains(s, "completed in") {
		t.Fatalf("output:\n%s", s)
	}
}

func TestFig13JSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "fig13", "-format", "json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	dec := json.NewDecoder(strings.NewReader(out.String()))
	var tables int
	for dec.More() {
		var v struct {
			ID   string
			Rows [][]string
		}
		if err := dec.Decode(&v); err != nil {
			t.Fatal(err)
		}
		if v.ID == "" || len(v.Rows) == 0 {
			t.Fatalf("empty table: %+v", v)
		}
		tables++
	}
	if tables != 2 { // fig13a + fig13bcd
		t.Fatalf("tables = %d", tables)
	}
}

func TestFig5CSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "fig5", "-format", "csv"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if first != "queueing_delay_ms,response_prob" {
		t.Fatalf("csv header = %q", first)
	}
}

// TestJSONReport exercises the acceptance scenario: a sweep where one
// experiment ID is bogus still runs the others, records the failure as an
// error entry, and exits nonzero with a valid report on stdout.
func TestJSONReport(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-json", "-exp", "fig5,fig13,nope"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d (want 1), stderr: %s", code, errb.String())
	}
	var rep struct {
		SchemaVersion int     `json:"schema_version"`
		Version       string  `json:"version"`
		Scale         string  `json:"scale"`
		Workers       int     `json:"workers"`
		WallSeconds   float64 `json:"wall_seconds"`
		SimEvents     uint64  `json:"sim_events"`
		Runs          []struct {
			ID          string  `json:"id"`
			WallSeconds float64 `json:"wall_seconds"`
			SimEvents   uint64  `json:"sim_events"`
			Error       string  `json:"error"`
			Tables      []struct {
				ID      string     `json:"id"`
				Columns []string   `json:"columns"`
				Rows    [][]string `json:"rows"`
			} `json:"tables"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid report JSON: %v\n%s", err, out.String())
	}
	if rep.SchemaVersion != 1 || rep.Scale != "quick" || rep.Workers < 1 || rep.Version == "" {
		t.Fatalf("report metadata: %+v", rep)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("runs = %d", len(rep.Runs))
	}
	byID := map[string]int{}
	for i, r := range rep.Runs {
		byID[r.ID] = i
	}
	fail := rep.Runs[byID["nope"]]
	if fail.Error == "" || len(fail.Tables) != 0 {
		t.Fatalf("failing run: %+v", fail)
	}
	// fig5 is analytic: wall time is recorded but no sim events accrue.
	fig5 := rep.Runs[byID["fig5"]]
	if fig5.Error != "" || len(fig5.Tables) != 1 || fig5.WallSeconds <= 0 {
		t.Fatalf("fig5 run: %+v", fig5)
	}
	if len(fig5.Tables[0].Rows) == 0 || len(fig5.Tables[0].Columns) == 0 {
		t.Fatalf("fig5 table empty: %+v", fig5.Tables[0])
	}
	fig13 := rep.Runs[byID["fig13"]]
	if fig13.Error != "" || len(fig13.Tables) != 2 {
		t.Fatalf("fig13 run: %+v", fig13)
	}
}

func TestProgressLines(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "fig13", "-progress"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := errb.String()
	if !strings.Contains(s, "fig13: started") || !strings.Contains(s, "fig13: done in") {
		t.Fatalf("progress lines:\n%s", s)
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	if code := run(ctx, []string{"-exp", "fig5"}, &out, &errb); code != 1 {
		t.Fatalf("cancelled exit = %d", code)
	}
}

func TestErrors(t *testing.T) {
	var out, errb bytes.Buffer
	ctx := context.Background()
	if code := run(ctx, []string{"-exp", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown experiment exit = %d", code)
	}
	if code := run(ctx, []string{"-scale", "huge"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scale exit = %d", code)
	}
	if code := run(ctx, []string{"-exp", "fig5", "-format", "xml"}, &out, &errb); code != 2 {
		t.Fatalf("unknown format exit = %d", code)
	}
	if code := run(ctx, []string{"-bogusflag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exit = %d", code)
	}
}

// TestCacheWarmSweep runs a tiny sweep twice into one cache directory: the
// second run must replay every cell without simulating and report the same
// tables.
func TestCacheWarmSweep(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-json", "-exp", "fig5", "-cache-dir", dir}

	var out1, errb bytes.Buffer
	if code := run(context.Background(), args, &out1, &errb); code != 0 {
		t.Fatalf("cold exit %d: %s", code, errb.String())
	}
	var out2 bytes.Buffer
	errb.Reset()
	if code := run(context.Background(), args, &out2, &errb); code != 0 {
		t.Fatalf("warm exit %d: %s", code, errb.String())
	}

	type report struct {
		SimEvents   uint64 `json:"sim_events"`
		CacheHits   int    `json:"cache_hits"`
		CacheMisses int    `json:"cache_misses"`
		CacheDir    string `json:"cache_dir"`
		Runs        []struct {
			Cached   bool   `json:"cached"`
			CacheKey string `json:"cache_key"`
			Tables   []struct {
				Rows [][]string `json:"rows"`
			} `json:"tables"`
		} `json:"runs"`
	}
	var cold, warm report
	if err := json.Unmarshal(out1.Bytes(), &cold); err != nil {
		t.Fatalf("cold report: %v", err)
	}
	if err := json.Unmarshal(out2.Bytes(), &warm); err != nil {
		t.Fatalf("warm report: %v", err)
	}
	if cold.CacheMisses != 1 || cold.Runs[0].Cached {
		t.Fatalf("cold run: %+v", cold)
	}
	if warm.CacheHits != 1 || warm.SimEvents != 0 || !warm.Runs[0].Cached {
		t.Fatalf("warm run: %+v", warm)
	}
	if warm.Runs[0].CacheKey != cold.Runs[0].CacheKey || warm.CacheDir != dir {
		t.Fatalf("cache metadata: cold %+v warm %+v", cold, warm)
	}
	if len(warm.Runs[0].Tables) != 1 ||
		warm.Runs[0].Tables[0].Rows[0][0] != cold.Runs[0].Tables[0].Rows[0][0] {
		t.Fatal("warm tables differ from cold tables")
	}
}

func TestCacheBadModeExits2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-cache-dir", t.TempDir(), "-cache", "sometimes", "-exp", "fig5"}, &out, &errb); code != 2 {
		t.Fatalf("bad cache mode exit = %d", code)
	}
}

// TestIsolatedSweep runs a cell in a re-exec'd worker process and then
// replays it from a non-isolated warm run: same cache key, same tables —
// process isolation must not perturb cell identity.
func TestIsolatedSweep(t *testing.T) {
	dir := t.TempDir()

	var cold, warm bytes.Buffer
	var errb bytes.Buffer
	if code := run(context.Background(), []string{"-json", "-exp", "fig5", "-cache-dir", dir, "-isolate"}, &cold, &errb); code != 0 {
		t.Fatalf("isolated exit %d: %s", code, errb.String())
	}
	errb.Reset()
	if code := run(context.Background(), []string{"-json", "-exp", "fig5", "-cache-dir", dir}, &warm, &errb); code != 0 {
		t.Fatalf("warm exit %d: %s", code, errb.String())
	}

	type report struct {
		CacheHits   int `json:"cache_hits"`
		CacheMisses int `json:"cache_misses"`
		Runs        []struct {
			Status   string `json:"status"`
			Error    string `json:"error"`
			Cached   bool   `json:"cached"`
			CacheKey string `json:"cache_key"`
			Tables   []struct {
				Rows [][]string `json:"rows"`
			} `json:"tables"`
		} `json:"runs"`
	}
	var c, w report
	if err := json.Unmarshal(cold.Bytes(), &c); err != nil {
		t.Fatalf("cold report: %v\n%s", err, cold.String())
	}
	if err := json.Unmarshal(warm.Bytes(), &w); err != nil {
		t.Fatalf("warm report: %v", err)
	}
	if c.CacheMisses != 1 || c.Runs[0].Status != "ok" || c.Runs[0].Error != "" {
		t.Fatalf("isolated cold run: %+v", c)
	}
	if w.CacheHits != 1 || !w.Runs[0].Cached {
		t.Fatalf("warm run after isolated commit: %+v", w)
	}
	if w.Runs[0].CacheKey != c.Runs[0].CacheKey {
		t.Fatalf("isolation changed the cache key: %s vs %s", c.Runs[0].CacheKey, w.Runs[0].CacheKey)
	}
	if len(c.Runs[0].Tables) != 1 ||
		c.Runs[0].Tables[0].Rows[0][0] != w.Runs[0].Tables[0].Rows[0][0] {
		t.Fatal("isolated tables differ from replayed tables")
	}
}

func TestCacheFsck(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-cache-fsck"}, &out, &errb); code != 2 {
		t.Fatalf("fsck without -cache-dir exit = %d", code)
	}
	if !strings.Contains(errb.String(), "-cache-dir") {
		t.Fatalf("stderr: %s", errb.String())
	}

	dir := t.TempDir()
	out.Reset()
	errb.Reset()
	if code := run(context.Background(), []string{"-exp", "fig5", "-json", "-cache-dir", dir}, &out, &errb); code != 0 {
		t.Fatalf("seed sweep exit %d: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run(context.Background(), []string{"-cache-fsck", "-cache-dir", dir}, &out, &errb); code != 0 {
		t.Fatalf("fsck exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "1 cells") {
		t.Fatalf("fsck summary: %q", out.String())
	}
}
