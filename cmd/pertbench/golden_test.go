package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pert/internal/experiments"
	"pert/internal/obs"
)

// TestGoldenQuickTables proves the simulator's pooled hot paths do not
// perturb results: the quick-scale tables of a representative experiment
// subset must be byte-identical to the committed results_quick.txt golden
// file. Event and packet pooling, the lazy-deletion heap, and the
// persistent-timer rewrite all claim to preserve the seeded RNG stream and
// (time, seq) event ordering exactly — a diff here means one of them
// changed behavior, and the optimization is a bug regardless of how much
// faster it is. The full sweep is checked the same way by `make results`.
func TestGoldenQuickTables(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiment subset is slow; skipped with -short")
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "results_quick.txt"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	goldenStr := string(golden)

	// Fast experiments spanning the main simulator surfaces: fig13 (web
	// traffic), ext-aqm (AQM disciplines at the bottleneck), ext-coexist
	// (multi-CC sharing), ext-delaycc (delayed ACKs), ext-fct (flow
	// completion times), fig11 (the parking lot, pinning a table produced
	// entirely through the scenario compiler). The Section 2 figures are
	// deliberately absent: they share one memoized trace study whose first
	// computation costs ~30s, which `make results` already covers.
	for _, id := range []string{"fig13", "ext-aqm", "ext-coexist", "ext-delaycc", "ext-fct", "fig11"} {
		id := id
		t.Run(id, func(t *testing.T) {
			var out, errb bytes.Buffer
			// Default worker count: scenario scheduling is parallel but
			// each run is seeded independently, so tables are identical
			// for any worker count (the committed golden was produced
			// with the default).
			args := []string{"-exp", id}
			// ext-aqm additionally runs with metrics enabled: the golden
			// comparison below then doubles as the metamorphic check that
			// time-series collection does not perturb results, and the
			// emitted series must exist and parse.
			var metricsDir string
			if id == "ext-aqm" {
				metricsDir = t.TempDir()
				args = append(args, "-metrics", metricsDir)
			}
			if code := run(context.Background(), args, &out, &errb); code != 0 {
				t.Fatalf("exit %d: %s", code, errb.String())
			}
			if metricsDir != "" {
				paths := experiments.SeriesPaths(metricsDir, id)
				if len(paths) == 0 {
					t.Fatalf("metrics run wrote no series under %s", metricsDir)
				}
				for _, p := range paths {
					f, err := os.Open(p)
					if err != nil {
						t.Fatalf("%s: %v", p, err)
					}
					pts, err := obs.ReadJSONL(f)
					f.Close()
					if err != nil {
						t.Errorf("%s does not parse: %v", p, err)
					} else if len(pts) == 0 {
						t.Errorf("%s is empty", p)
					}
				}
			}
			s := out.String()
			// Drop the wall-clock trailer ("[id completed in ...]");
			// everything before it is deterministic table output.
			i := strings.LastIndex(s, "[")
			if i < 0 {
				t.Fatalf("no completion trailer in output:\n%s", s)
			}
			tables := s[:i]
			if tables == "" {
				t.Fatal("experiment rendered no tables")
			}
			if !strings.Contains(goldenStr, tables) {
				t.Errorf("%s tables diverged from the results_quick.txt golden file; "+
					"if this change intentionally alters results, regenerate with `make results`.\ngot:\n%s", id, tables)
			}
		})
	}
}
