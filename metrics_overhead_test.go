package pert

import (
	"io"
	"testing"
	"time"

	"pert/internal/netem"
	"pert/internal/obs"
	"pert/internal/queue"
	"pert/internal/sim"
	"pert/internal/tcp"
	"pert/internal/topo"
	"pert/internal/trafficgen"
)

// metricsBenchTopology builds the BenchmarkSimulatedSecond dumbbell and, when
// withMetrics is set, attaches the full observability path a metrics-enabled
// run pays: the bottleneck link series, per-flow sender series for every
// flow, a per-ACK RTT histogram, and a JSONL writer to io.Discard sampling at
// the default 100 ms interval.
func metricsBenchTopology(withMetrics bool) (*sim.Engine, *topo.Dumbbell) {
	eng := sim.NewEngine(99)
	net := netem.NewNetwork(eng)
	d := topo.NewDumbbell(net, topo.DumbbellConfig{
		Bandwidth: 30e6,
		Delay:     20 * sim.Millisecond,
		Hosts:     8,
		RTTs:      []sim.Duration{60 * sim.Millisecond},
		Queue: func(limit int, _ float64) netem.Discipline {
			return queue.NewDropTail(limit)
		},
	})
	ids := trafficgen.NewIDs()
	conn := tcp.Config{}
	var reg *obs.Registry
	if withMetrics {
		reg = obs.NewRegistry(eng)
		reg.AddSink(obs.NewJSONLWriter(io.Discard))
		reg.EnableFlight("overhead-bench", 0)
		hist := reg.NewHistogram("tcp.rtt")
		conn.OnRTTSample = func(_ sim.Time, rtt sim.Duration, _ *netem.Packet) {
			hist.Observe(rtt.Seconds())
		}
	}
	fwd := trafficgen.FTPFleet(net, ids, d.Left, d.Right, 8, trafficgen.FTPConfig{
		CC:   func() tcp.CongestionControl { return tcp.NewPERTRed() },
		Conn: conn,
	})
	if withMetrics {
		d.Forward.Instrument(reg, "queue")
		for i, f := range fwd {
			tcp.InstrumentConn(reg, f.Conn, "tcp/"+string(rune('0'+i)))
		}
		reg.Start(0, 100*sim.Millisecond)
	}
	return eng, d
}

// BenchmarkSimulatedSecondMetrics is BenchmarkSimulatedSecond with the
// observability layer enabled — compare the two to see what a metrics-on run
// costs (the acceptance budget is <10%).
func BenchmarkSimulatedSecondMetrics(b *testing.B) {
	eng, d := metricsBenchTopology(true)
	eng.Run(5 * sim.Second)
	b.ResetTimer()
	start := d.Forward.Stats.TxPackets
	horizon := eng.Now()
	for i := 0; i < b.N; i++ {
		horizon += sim.Second
		eng.Run(horizon)
	}
	b.ReportMetric(float64(d.Forward.Stats.TxPackets-start)/float64(b.N), "pkts/simsec")
}

// TestMetricsOverheadSmoke asserts that enabling metrics at the default
// sampling interval costs under 10% of wall time on the standard loaded
// dumbbell. Interleaved min-of-k runs make the comparison robust to scheduler
// noise: the minimum is the cleanest observation of each configuration.
func TestMetricsOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped with -short")
	}
	engOff, _ := metricsBenchTopology(false)
	engOn, _ := metricsBenchTopology(true)
	engOff.Run(5 * sim.Second) // steady state before timing
	engOn.Run(5 * sim.Second)

	simSecond := func(eng *sim.Engine) time.Duration {
		t0 := time.Now()
		eng.Run(eng.Now() + sim.Second)
		return time.Since(t0)
	}
	const rounds = 7
	minOff, minOn := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < rounds; i++ {
		if d := simSecond(engOff); d < minOff {
			minOff = d
		}
		if d := simSecond(engOn); d < minOn {
			minOn = d
		}
	}
	ratio := float64(minOn) / float64(minOff)
	t.Logf("disabled %v, enabled %v, ratio %.3f", minOff, minOn, ratio)
	if ratio > 1.10 {
		t.Errorf("metrics at the default interval cost %.1f%% (> 10%% budget): disabled %v, enabled %v",
			(ratio-1)*100, minOff, minOn)
	}
}
