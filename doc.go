// Package pert is a from-scratch Go reproduction of "Emulating AQM from End
// Hosts" (Bhandarkar, Reddy, Zhang, Loguinov — SIGCOMM 2007): the PERT
// congestion-control algorithm, a packet-level discrete-event network
// simulator to evaluate it on, the congestion-predictor study of Section 2,
// and the fluid-model stability analysis of Section 5. See README.md for the
// layout and bench_test.go for the per-figure reproduction harness.
package pert
